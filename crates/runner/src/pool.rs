//! The work-stealing sweep pool.
//!
//! Jobs are dealt round-robin onto per-worker deques; a worker serves its
//! own deque front-to-back and steals from the back of a sibling's deque
//! when it runs dry. Each job's result lands in the slot matching its
//! position in the input iterator, so output order is deterministic no
//! matter which worker ran what, and a panicking job fails only itself.

use crate::manifest;
use scotch_sim::metrics::{Counter, Histogram};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-job context handed to the work closure: the seed it should use plus
/// channels for reporting work volume and KPIs into the run manifest.
#[derive(Debug)]
pub struct JobCtx {
    /// The seed this job was scheduled with.
    pub seed: u64,
    units: u64,
    kpis: Vec<(String, f64)>,
    metrics: Vec<(String, f64)>,
    checks: Vec<(String, String)>,
    timings: Vec<(String, f64)>,
}

impl JobCtx {
    /// Report `n` units of work done (simulated events, rows, packets —
    /// whatever throughput should be measured in).
    pub fn add_units(&mut self, n: u64) {
        self.units += n;
    }

    /// Record a named result metric for the run manifest. KPIs must be
    /// deterministic in `(job, seed)`; timing goes in [`JobResult::wall`]
    /// instead.
    pub fn kpi(&mut self, name: &str, value: f64) {
        self.kpis.push((name.to_string(), value));
    }

    /// Record one entry of the run's full metrics-registry snapshot.
    ///
    /// Where KPIs are the handful of curated headline numbers, this channel
    /// carries the complete flattened registry so archived `results/` runs
    /// are comparable in every dimension without re-running. Same
    /// determinism rule as KPIs: values must be pure in `(job, seed)`.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Record a whole metrics snapshot (an iterator of `(name, value)`).
    pub fn metrics_snapshot<'a>(&mut self, entries: impl IntoIterator<Item = (&'a str, f64)>) {
        for (name, value) in entries {
            self.metric(name, value);
        }
    }

    /// Record a named post-run check verdict (e.g. one SLO rule's
    /// "ok"/"violated"/"skipped") for the manifest's `checks` object.
    /// Verdicts must be deterministic in `(job, seed)` like KPIs.
    pub fn check(&mut self, name: &str, verdict: impl Into<String>) {
        self.checks.push((name.to_string(), verdict.into()));
    }

    /// Record a named wall-clock measurement (utilization, stall fraction,
    /// speedup inputs). Unlike KPIs these are explicitly machine-dependent:
    /// they appear only in the manifest's per-job `timing` object and are
    /// stripped from normalized manifests.
    pub fn timing(&mut self, name: &str, value: f64) {
        self.timings.push((name.to_string(), value));
    }
}

/// One schedulable unit of a sweep.
pub struct Job<T> {
    /// Stable identifier carried into results, progress lines, manifests.
    pub id: String,
    /// The seed recorded for this job.
    pub seed: u64,
    work: Box<dyn FnOnce(&mut JobCtx) -> T + Send>,
}

impl<T> Job<T> {
    /// A job named `id`, running `work` with `seed`.
    pub fn new(
        id: impl Into<String>,
        seed: u64,
        work: impl FnOnce(&mut JobCtx) -> T + Send + 'static,
    ) -> Self {
        Job {
            id: id.into(),
            seed,
            work: Box::new(work),
        }
    }
}

/// The outcome of one job.
pub struct JobResult<T> {
    /// Job id as given to [`Job::new`].
    pub id: String,
    /// Seed the job ran with.
    pub seed: u64,
    /// Wall-clock execution time of the work closure.
    pub wall: Duration,
    /// `Ok(value)` or `Err(panic message)`.
    pub outcome: Result<T, String>,
    /// Work units reported via [`JobCtx::add_units`].
    pub units: u64,
    /// KPIs reported via [`JobCtx::kpi`].
    pub kpis: Vec<(String, f64)>,
    /// Full metrics-registry snapshot reported via [`JobCtx::metric`].
    pub metrics: Vec<(String, f64)>,
    /// Named check verdicts reported via [`JobCtx::check`].
    pub checks: Vec<(String, String)>,
    /// Wall-clock measurements reported via [`JobCtx::timing`].
    pub timings: Vec<(String, f64)>,
}

impl<T> JobResult<T> {
    /// Units per second of this job, 0 when no units were reported.
    pub fn units_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.units as f64 / secs
        } else {
            0.0
        }
    }
}

/// A completed sweep: per-job results in input order plus aggregate metrics.
pub struct Sweep<T> {
    /// Sweep name (manifest header, progress prefix).
    pub name: String,
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Per-job results, in the order the jobs were submitted.
    pub results: Vec<JobResult<T>>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Per-job wall-times in microseconds.
    pub timing_us: Histogram,
    /// Jobs that returned normally.
    pub completed: Counter,
    /// Jobs that panicked.
    pub failed: Counter,
    /// Jobs taken from a sibling worker's deque rather than the owner's.
    pub steals: Counter,
    /// Own-deque depth observed at each local pop (scheduling pressure:
    /// a persistently deep own queue with zero steals means the deal was
    /// balanced; shallow queues with many steals mean workers ran dry).
    pub queue_depth: Histogram,
}

impl<T> Sweep<T> {
    /// Jobs per wall-clock second over the whole sweep.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.results.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Sum of all reported work units.
    pub fn total_units(&self) -> u64 {
        self.results.iter().map(|r| r.units).sum()
    }

    /// The values of all successful jobs, in input order, dropping failed
    /// ones.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(|r| r.outcome.as_ref().ok())
    }

    /// Unwrap every job value in input order; panics with the offending
    /// job ids if any job failed.
    pub fn into_values(self) -> Vec<T> {
        let failures: Vec<String> = self
            .results
            .iter()
            .filter_map(|r| {
                r.outcome
                    .as_ref()
                    .err()
                    .map(|e| format!("{} (seed {}): {e}", r.id, r.seed))
            })
            .collect();
        assert!(
            failures.is_empty(),
            "sweep '{}': {} job(s) failed: {}",
            self.name,
            failures.len(),
            failures.join("; ")
        );
        self.results
            .into_iter()
            .map(|r| r.outcome.unwrap_or_else(|_| unreachable!()))
            .collect()
    }

    /// The machine-readable run manifest, including timing fields.
    pub fn manifest(&self) -> crate::json::Json {
        manifest::build(self, true)
    }

    /// The manifest with every timing-dependent field stripped; two sweeps
    /// over the same jobs and seeds produce identical normalized manifests.
    pub fn manifest_normalized(&self) -> crate::json::Json {
        manifest::build(self, false)
    }
}

/// Sweep execution policy: thread count and progress reporting.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    progress: bool,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            progress: false,
        }
    }
}

impl SweepRunner {
    /// A runner with the default thread count and no progress output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the worker count (0 means "default").
    pub fn threads(mut self, n: usize) -> Self {
        if n > 0 {
            self.threads = n;
        }
        self
    }

    /// Emit a progress line to stderr as each job finishes.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Run `jobs` to completion and collect a [`Sweep`].
    pub fn run<T: Send>(&self, name: &str, jobs: Vec<Job<T>>) -> Sweep<T> {
        let total = jobs.len();
        let threads = self.threads.min(total.max(1));
        let started = Instant::now();

        // Deal jobs round-robin onto per-worker deques. Each entry carries
        // the job's input index so results land in their original slot.
        type WorkQueue<T> = Mutex<VecDeque<(usize, Job<T>)>>;
        let queues: Vec<WorkQueue<T>> = (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % threads].lock().unwrap().push_back((i, job));
        }

        let slots: Vec<Mutex<Option<JobResult<T>>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let done = AtomicUsize::new(0);
        let total_steals = AtomicUsize::new(0);
        let depth_slots: Vec<Mutex<Vec<f64>>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|scope| {
            for me in 0..threads {
                let queues = &queues;
                let slots = &slots;
                let done = &done;
                let total_steals = &total_steals;
                let depth_slots = &depth_slots;
                scope.spawn(move || {
                    let mut steals = 0usize;
                    let mut depths = Vec::new();
                    loop {
                        // Own queue first (front), then steal (back).
                        let next = {
                            let mut own = queues[me].lock().unwrap();
                            let job = own.pop_front();
                            if job.is_some() {
                                depths.push(own.len() as f64);
                            }
                            job
                        }
                        .or_else(|| {
                            (1..threads).map(|k| (me + k) % threads).find_map(|victim| {
                                let stolen = queues[victim].lock().unwrap().pop_back();
                                if stolen.is_some() {
                                    steals += 1;
                                }
                                stolen
                            })
                        });
                        let Some((slot, job)) = next else {
                            total_steals.fetch_add(steals, Ordering::Relaxed);
                            depth_slots[me].lock().unwrap().append(&mut depths);
                            break;
                        };
                        let result = execute(job);
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if self.progress {
                            eprintln!(
                                "[{finished}/{total}] {name}: {} seed={} {} in {:.2}s",
                                result.id,
                                result.seed,
                                if result.outcome.is_ok() {
                                    "ok"
                                } else {
                                    "FAILED"
                                },
                                result.wall.as_secs_f64()
                            );
                        }
                        *slots[slot].lock().unwrap() = Some(result);
                    }
                });
            }
        });

        let mut timing_us = Histogram::new();
        let mut completed = Counter::new();
        let mut failed = Counter::new();
        let results: Vec<JobResult<T>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
            .collect();
        for r in &results {
            timing_us.record(r.wall.as_secs_f64() * 1e6);
            if r.outcome.is_ok() {
                completed.incr();
            } else {
                failed.incr();
            }
        }
        let mut steals = Counter::new();
        steals.add(total_steals.load(Ordering::Relaxed) as u64);
        let mut queue_depth = Histogram::new();
        for slot in depth_slots {
            for d in slot.into_inner().unwrap() {
                queue_depth.record(d);
            }
        }
        Sweep {
            name: name.to_string(),
            threads,
            results,
            wall: started.elapsed(),
            timing_us,
            completed,
            failed,
            steals,
            queue_depth,
        }
    }
}

fn execute<T>(job: Job<T>) -> JobResult<T> {
    let Job { id, seed, work } = job;
    let mut ctx = JobCtx {
        seed,
        units: 0,
        kpis: Vec::new(),
        metrics: Vec::new(),
        checks: Vec::new(),
        timings: Vec::new(),
    };
    let begun = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| work(&mut ctx))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "job panicked".to_string()
        }
    });
    JobResult {
        id,
        seed,
        wall: begun.elapsed(),
        outcome,
        units: ctx.units,
        kpis: ctx.kpis,
        metrics: ctx.metrics,
        checks: ctx.checks,
        timings: ctx.timings,
    }
}
