//! A minimal JSON document model and pretty-printer.
//!
//! The workspace builds without external crates, so manifest and artifact
//! emission use this instead of `serde_json`. Object key order is exactly
//! insertion order, which is what makes manifests byte-stable and
//! diff-friendly in CI.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no whitespace (JSONL records).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj()
            .set("name", "sweep")
            .set("n", 3u64)
            .set("ok", true)
            .set(
                "items",
                Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Str("a\"b".into())]),
            );
        let text = doc.pretty();
        assert!(text.starts_with("{\n  \"name\": \"sweep\""));
        assert!(text.contains("\"a\\\"b\""));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut s = String::new();
        write_num(&mut s, 42.0);
        assert_eq!(s, "42");
        s.clear();
        write_num(&mut s, 0.25);
        assert_eq!(s, "0.25");
        s.clear();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn compact_renders_one_line() {
        let doc = Json::obj()
            .set("seq", 7u64)
            .set("items", Json::Arr(vec![Json::Num(1.0), Json::Null]))
            .set("kind", "a b");
        assert_eq!(doc.compact(), r#"{"seq":7,"items":[1,null],"kind":"a b"}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
    }

    #[test]
    fn control_chars_escaped() {
        let mut s = String::new();
        write_str(&mut s, "a\nb\u{1}");
        assert_eq!(s, "\"a\\nb\\u0001\"");
    }
}
