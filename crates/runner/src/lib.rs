#![warn(missing_docs)]

//! # scotch-runner
//!
//! The shared parallel sweep runner behind every experiment fan-out and the
//! `scotch-cli sweep` subcommand. The paper's evaluation (§6) is a grid of
//! `(scenario, seed, parameter)` sweeps; this crate owns the one
//! work-stealing pool that drives them all:
//!
//! * [`SweepRunner`] — the pool. Takes an ordered list of [`Job`]s and
//!   returns a [`Sweep`] whose results sit in input order regardless of
//!   scheduling, so sweep output is deterministic.
//! * Panic containment — a panicking job fails *that job*
//!   ([`JobResult::outcome`] is `Err`), never the rest of the sweep.
//! * Metrics — per-job wall-time goes into a
//!   [`scotch_sim::metrics::Histogram`], completion counts into
//!   [`scotch_sim::metrics::Counter`]s, and jobs report work units and
//!   KPIs through [`JobCtx`].
//! * Manifests — [`Sweep::manifest`] renders a machine-readable JSON run
//!   record; [`Sweep::manifest_normalized`] strips the timing fields so CI
//!   can diff two runs of the same sweep byte-for-byte.

pub mod epoch;
pub mod json;
pub mod manifest;
pub mod pool;

pub use epoch::{lockstep, lockstep_timed, LockstepStats};
pub use json::Json;
pub use pool::{Job, JobCtx, JobResult, Sweep, SweepRunner};
