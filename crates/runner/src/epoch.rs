//! Lockstep epoch executor for conservatively synchronized shards.
//!
//! [`lockstep`] drives a set of *lanes* (per-shard simulation slices)
//! through alternating phases:
//!
//! 1. a **barrier** — the control closure sees every lane at rest, exchanges
//!    whatever needs exchanging between them, and either names the next
//!    epoch or ends the run;
//! 2. an **epoch** — every lane independently advances to the epoch bound.
//!
//! Lanes are moved to persistent worker threads over *bounded* rendezvous
//! channels ([`std::sync::mpsc::sync_channel`]) and moved back when their
//! epoch is done — ownership ping-pong, so no lane is ever aliased and the
//! step function needs no locks. With `threads <= 1` (or a single lane) the
//! same control loop runs inline on the caller's thread; because an epoch
//! only touches lane-local state, the threaded schedule is observationally
//! identical to the sequential one by construction.

use std::sync::mpsc::{channel, sync_channel, SyncSender};
use std::thread;
use std::time::{Duration, Instant};

/// Wall-clock accounting of one [`lockstep_timed`] run. Observability only:
/// the numbers are machine- and schedule-dependent and must never feed a
/// deterministic report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LockstepStats {
    /// Barriers executed (`control` calls that returned an epoch token).
    pub epochs: u64,
    /// Total wall-clock time inside the `control` closure (barriers).
    pub barrier_wall: Duration,
    /// Total wall-clock time in epoch execution (dispatch to last lane
    /// collected; includes worker idle time on unbalanced lanes).
    pub epoch_wall: Duration,
}

/// Drive `lanes` through lockstep epochs until `control` returns `None`.
///
/// At every barrier `control` is called with exclusive access to all lanes
/// (in stable index order) and returns the next epoch token, cloned to each
/// lane, or `None` to stop. During an epoch, `step(lane_index, lane,
/// token)` runs once per lane — concurrently when `threads > 1`.
///
/// Returns the lanes in their original order.
pub fn lockstep<L, E, C, S>(lanes: Vec<L>, threads: usize, control: C, step: S) -> Vec<L>
where
    L: Send,
    E: Clone + Send,
    C: FnMut(&mut [L]) -> Option<E>,
    S: Fn(usize, &mut L, E) + Sync,
{
    lockstep_timed(lanes, threads, control, step).0
}

/// [`lockstep`] with per-phase wall-clock accounting: returns the lanes and
/// a [`LockstepStats`] splitting the run into barrier vs. epoch time. The
/// stamps are two `Instant` reads per phase (per epoch, not per event), so
/// the accounting is always on.
pub fn lockstep_timed<L, E, C, S>(
    mut lanes: Vec<L>,
    threads: usize,
    mut control: C,
    step: S,
) -> (Vec<L>, LockstepStats)
where
    L: Send,
    E: Clone + Send,
    C: FnMut(&mut [L]) -> Option<E>,
    S: Fn(usize, &mut L, E) + Sync,
{
    let mut stats = LockstepStats::default();
    let n = lanes.len();
    if n == 0 {
        return (lanes, stats);
    }
    if threads <= 1 || n == 1 {
        loop {
            let t0 = Instant::now();
            let token = control(&mut lanes);
            stats.barrier_wall += t0.elapsed();
            let Some(token) = token else {
                break;
            };
            stats.epochs += 1;
            let t0 = Instant::now();
            for (i, lane) in lanes.iter_mut().enumerate() {
                step(i, lane, token.clone());
            }
            stats.epoch_wall += t0.elapsed();
        }
        return (lanes, stats);
    }

    let step = &step;
    thread::scope(|scope| {
        // One rendezvous channel per lane; results funnel back on a shared
        // channel tagged with the lane index so the barrier can restore
        // order.
        let (done_tx, done_rx) = channel::<(usize, L)>();
        let mut to_worker: Vec<SyncSender<(L, E)>> = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = sync_channel::<(L, E)>(1);
            let done = done_tx.clone();
            scope.spawn(move || {
                while let Ok((mut lane, token)) = rx.recv() {
                    step(i, &mut lane, token);
                    if done.send((i, lane)).is_err() {
                        break;
                    }
                }
            });
            to_worker.push(tx);
        }
        drop(done_tx);

        loop {
            let t0 = Instant::now();
            let token = control(&mut lanes);
            stats.barrier_wall += t0.elapsed();
            let Some(token) = token else {
                break;
            };
            stats.epochs += 1;
            let t0 = Instant::now();
            let mut out: Vec<Option<L>> = lanes.drain(..).map(Some).collect();
            for (i, tx) in to_worker.iter().enumerate() {
                let lane = out[i].take().expect("lane present before dispatch");
                tx.send((lane, token.clone()))
                    .unwrap_or_else(|_| panic!("epoch worker {i} died"));
            }
            let mut back: Vec<Option<L>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (i, lane) = done_rx.recv().expect("epoch worker died mid-epoch");
                back[i] = Some(lane);
            }
            lanes.extend(back.into_iter().map(|l| l.expect("every lane returned")));
            stats.epoch_wall += t0.elapsed();
        }
        drop(to_worker); // hang up; workers exit their recv loops
    });
    (lanes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential and threaded schedules produce identical lane states.
    #[test]
    fn threaded_matches_sequential() {
        let run = |threads: usize| -> Vec<u64> {
            let lanes: Vec<u64> = vec![1, 10, 100, 1000];
            let mut epochs = 0;
            lockstep(
                lanes,
                threads,
                move |_lanes| {
                    epochs += 1;
                    if epochs <= 5 {
                        Some(epochs as u64)
                    } else {
                        None
                    }
                },
                |i, lane, token| {
                    *lane = lane.wrapping_mul(31).wrapping_add(token + i as u64);
                },
            )
        };
        assert_eq!(run(1), run(4));
    }

    /// The control closure observes barrier-consistent lane states.
    #[test]
    fn barriers_see_all_lane_updates() {
        let lanes: Vec<u64> = vec![0; 8];
        let mut sums = Vec::new();
        let out = lockstep(
            lanes,
            4,
            |lanes: &mut [u64]| {
                sums.push(lanes.iter().sum::<u64>());
                if sums.len() <= 3 {
                    Some(1u64)
                } else {
                    None
                }
            },
            |_i, lane, token| *lane += token,
        );
        assert_eq!(sums, vec![0, 8, 16, 24]);
        assert_eq!(out, vec![3; 8]);
    }

    /// The timed variant counts epochs and accumulates both phase walls
    /// without changing the lane results.
    #[test]
    fn timed_variant_counts_epochs() {
        for threads in [1, 4] {
            let mut epochs = 0;
            let (lanes, stats) = lockstep_timed(
                vec![0u64; 4],
                threads,
                move |_lanes: &mut [u64]| {
                    epochs += 1;
                    (epochs <= 3).then_some(1u64)
                },
                |_, lane, token| *lane += token,
            );
            assert_eq!(lanes, vec![3; 4]);
            assert_eq!(stats.epochs, 3);
        }
    }

    /// Zero lanes is a no-op, one lane takes the inline path.
    #[test]
    fn degenerate_inputs() {
        let out: Vec<u32> = lockstep(Vec::new(), 4, |_| Some(()), |_, _, _| {});
        assert!(out.is_empty());
        let mut fired = false;
        let out = lockstep(
            vec![7u32],
            8,
            move |_| {
                if fired {
                    None
                } else {
                    fired = true;
                    Some(())
                }
            },
            |_, lane, _| *lane += 1,
        );
        assert_eq!(out, vec![8]);
    }
}
