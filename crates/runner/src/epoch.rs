//! Lockstep epoch executor for conservatively synchronized shards.
//!
//! [`lockstep`] drives a set of *lanes* (per-shard simulation slices)
//! through alternating phases:
//!
//! 1. a **barrier** — the control closure sees every lane at rest, exchanges
//!    whatever needs exchanging between them, and either names the next
//!    epoch or ends the run;
//! 2. an **epoch** — every lane independently advances to the epoch bound.
//!
//! Lanes are moved to persistent worker threads over *bounded* rendezvous
//! channels ([`std::sync::mpsc::sync_channel`]) and moved back when their
//! epoch is done — ownership ping-pong, so no lane is ever aliased and the
//! step function needs no locks. With `threads <= 1` (or a single lane) the
//! same control loop runs inline on the caller's thread; because an epoch
//! only touches lane-local state, the threaded schedule is observationally
//! identical to the sequential one by construction.

use std::sync::mpsc::{channel, sync_channel, SyncSender};
use std::thread;

/// Drive `lanes` through lockstep epochs until `control` returns `None`.
///
/// At every barrier `control` is called with exclusive access to all lanes
/// (in stable index order) and returns the next epoch token, cloned to each
/// lane, or `None` to stop. During an epoch, `step(lane_index, lane,
/// token)` runs once per lane — concurrently when `threads > 1`.
///
/// Returns the lanes in their original order.
pub fn lockstep<L, E, C, S>(mut lanes: Vec<L>, threads: usize, mut control: C, step: S) -> Vec<L>
where
    L: Send,
    E: Clone + Send,
    C: FnMut(&mut [L]) -> Option<E>,
    S: Fn(usize, &mut L, E) + Sync,
{
    let n = lanes.len();
    if n == 0 {
        return lanes;
    }
    if threads <= 1 || n == 1 {
        while let Some(token) = control(&mut lanes) {
            for (i, lane) in lanes.iter_mut().enumerate() {
                step(i, lane, token.clone());
            }
        }
        return lanes;
    }

    let step = &step;
    thread::scope(|scope| {
        // One rendezvous channel per lane; results funnel back on a shared
        // channel tagged with the lane index so the barrier can restore
        // order.
        let (done_tx, done_rx) = channel::<(usize, L)>();
        let mut to_worker: Vec<SyncSender<(L, E)>> = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = sync_channel::<(L, E)>(1);
            let done = done_tx.clone();
            scope.spawn(move || {
                while let Ok((mut lane, token)) = rx.recv() {
                    step(i, &mut lane, token);
                    if done.send((i, lane)).is_err() {
                        break;
                    }
                }
            });
            to_worker.push(tx);
        }
        drop(done_tx);

        loop {
            let Some(token) = control(&mut lanes) else {
                break;
            };
            let mut out: Vec<Option<L>> = lanes.drain(..).map(Some).collect();
            for (i, tx) in to_worker.iter().enumerate() {
                let lane = out[i].take().expect("lane present before dispatch");
                tx.send((lane, token.clone()))
                    .unwrap_or_else(|_| panic!("epoch worker {i} died"));
            }
            let mut back: Vec<Option<L>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (i, lane) = done_rx.recv().expect("epoch worker died mid-epoch");
                back[i] = Some(lane);
            }
            lanes.extend(back.into_iter().map(|l| l.expect("every lane returned")));
        }
        drop(to_worker); // hang up; workers exit their recv loops
    });
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential and threaded schedules produce identical lane states.
    #[test]
    fn threaded_matches_sequential() {
        let run = |threads: usize| -> Vec<u64> {
            let lanes: Vec<u64> = vec![1, 10, 100, 1000];
            let mut epochs = 0;
            lockstep(
                lanes,
                threads,
                move |_lanes| {
                    epochs += 1;
                    if epochs <= 5 {
                        Some(epochs as u64)
                    } else {
                        None
                    }
                },
                |i, lane, token| {
                    *lane = lane.wrapping_mul(31).wrapping_add(token + i as u64);
                },
            )
        };
        assert_eq!(run(1), run(4));
    }

    /// The control closure observes barrier-consistent lane states.
    #[test]
    fn barriers_see_all_lane_updates() {
        let lanes: Vec<u64> = vec![0; 8];
        let mut sums = Vec::new();
        let out = lockstep(
            lanes,
            4,
            |lanes: &mut [u64]| {
                sums.push(lanes.iter().sum::<u64>());
                if sums.len() <= 3 {
                    Some(1u64)
                } else {
                    None
                }
            },
            |_i, lane, token| *lane += token,
        );
        assert_eq!(sums, vec![0, 8, 16, 24]);
        assert_eq!(out, vec![3; 8]);
    }

    /// Zero lanes is a no-op, one lane takes the inline path.
    #[test]
    fn degenerate_inputs() {
        let out: Vec<u32> = lockstep(Vec::new(), 4, |_| Some(()), |_, _, _| {});
        assert!(out.is_empty());
        let mut fired = false;
        let out = lockstep(
            vec![7u32],
            8,
            move |_| {
                if fired {
                    None
                } else {
                    fired = true;
                    Some(())
                }
            },
            |_, lane, _| *lane += 1,
        );
        assert_eq!(out, vec![8]);
    }
}
