//! Directed links with finite bandwidth, propagation delay and a drop-tail
//! queue.
//!
//! Transmission is modelled with a virtual clock (see
//! [`scotch_sim::rate::FifoServer`]): serialization time is
//! `size * 8 / rate`, jobs queue FIFO, and arrivals that would exceed the
//! queue bound are dropped. This reproduces the paper's observation that
//! the *data* plane is never the bottleneck in the DDoS experiments
//! ("even at the peak attacking rate ... the traffic rate is merely
//! 45.6 Mbps, a small fraction of the data link bandwidth").

use scotch_sim::rate::{Admission, FifoServer};
use scotch_sim::{SimDuration, SimTime};

/// Identifier of a directed link within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Static parameters of a link (applied to both directions of a duplex
/// link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bit rate in bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Drop-tail queue bound, in packets.
    pub queue_packets: usize,
    /// Random per-packet loss probability (fault injection; 0 = ideal
    /// link). Takes effect only when the topology has fault injection
    /// enabled with a seeded RNG.
    pub loss: f64,
}

impl LinkSpec {
    /// A link of `gbps` gigabits per second with the given propagation
    /// delay in microseconds and a default 256-packet queue.
    pub fn gbps(gbps: f64, propagation_us: u64) -> Self {
        LinkSpec {
            rate_bps: gbps * 1e9,
            propagation: SimDuration::from_micros(propagation_us),
            queue_packets: 256,
            loss: 0.0,
        }
    }

    /// 10 Gbps data-center cable, 5 µs propagation (the Pica8 data port).
    pub fn tengig() -> Self {
        Self::gbps(10.0, 5)
    }

    /// 1 Gbps link, 5 µs propagation (HP / vSwitch data ports, management
    /// ports).
    pub fn gig() -> Self {
        Self::gbps(1.0, 5)
    }

    /// Builder-style queue bound override.
    pub fn with_queue(mut self, packets: usize) -> Self {
        self.queue_packets = packets;
        self
    }

    /// Builder-style random loss probability (fault injection).
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss must be a probability");
        self.loss = p;
        self
    }
}

/// Result of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxResult {
    /// Accepted; the packet arrives at the far end at `arrives_at`.
    Delivered {
        /// Arrival time at the receiving port.
        arrives_at: SimTime,
    },
    /// Queue overflow; the packet is lost.
    Dropped,
}

/// Dynamic state of one directed link.
#[derive(Debug, Clone)]
pub struct LinkState {
    spec: LinkSpec,
    server: FifoServer,
    tx_packets: u64,
    tx_bytes: u64,
    drops: u64,
    faulted: u64,
    /// Administrative state (fault injection): a down link drops everything.
    up: bool,
    /// Extra one-way latency (fault injection: degraded link).
    extra_delay: SimDuration,
}

impl LinkState {
    /// Fresh state for a link with the given spec.
    pub fn new(spec: LinkSpec) -> Self {
        LinkState {
            server: FifoServer::new(spec.queue_packets),
            spec,
            tx_packets: 0,
            tx_bytes: 0,
            drops: 0,
            faulted: 0,
            up: true,
            extra_delay: SimDuration::ZERO,
        }
    }

    /// Record a fault-injected loss (decided by the topology's fault RNG).
    pub fn record_fault(&mut self) {
        self.faulted += 1;
    }

    /// Packets lost to injected faults.
    pub fn faulted(&self) -> u64 {
        self.faulted
    }

    /// The link's static parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Set the administrative state (fault injection). A down link drops
    /// every offered packet, counted as an injected fault.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Administrative state: false while a link-down fault is active.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Set the extra one-way latency added to every delivery (fault
    /// injection: degraded link). [`SimDuration::ZERO`] restores the link.
    pub fn set_extra_delay(&mut self, d: SimDuration) {
        self.extra_delay = d;
    }

    /// Current extra one-way latency (zero on a healthy link).
    pub fn extra_delay(&self) -> SimDuration {
        self.extra_delay
    }

    /// Offer a packet of `size_bytes` for transmission at `now`.
    pub fn transmit(&mut self, now: SimTime, size_bytes: u32) -> TxResult {
        if !self.up {
            self.faulted += 1;
            return TxResult::Dropped;
        }
        let tx_time = SimDuration::from_secs_f64(size_bytes as f64 * 8.0 / self.spec.rate_bps);
        match self.server.offer(now, tx_time) {
            Admission::Accepted { departs_at } => {
                self.tx_packets += 1;
                self.tx_bytes += size_bytes as u64;
                TxResult::Delivered {
                    arrives_at: departs_at + self.spec.propagation + self.extra_delay,
                }
            }
            Admission::Rejected => {
                self.drops += 1;
                TxResult::Dropped
            }
        }
    }

    /// Packets successfully transmitted.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Bytes successfully transmitted.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Packets dropped at the queue.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_scales_with_size() {
        // 1 Gbps: 1500 B = 12 µs on the wire, plus 5 µs propagation.
        let mut l = LinkState::new(LinkSpec::gig());
        match l.transmit(SimTime::ZERO, 1500) {
            TxResult::Delivered { arrives_at } => {
                assert_eq!(arrives_at, SimTime::from_nanos(12_000 + 5_000));
            }
            TxResult::Dropped => panic!("should deliver"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = LinkState::new(LinkSpec::gig());
        let a = match l.transmit(SimTime::ZERO, 1500) {
            TxResult::Delivered { arrives_at } => arrives_at,
            _ => panic!(),
        };
        let b = match l.transmit(SimTime::ZERO, 1500) {
            TxResult::Delivered { arrives_at } => arrives_at,
            _ => panic!(),
        };
        assert_eq!(b.duration_since(a), SimDuration::from_micros(12));
    }

    #[test]
    fn overflow_drops() {
        let mut l = LinkState::new(LinkSpec::gig().with_queue(2));
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1500),
            TxResult::Delivered { .. }
        ));
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1500),
            TxResult::Delivered { .. }
        ));
        assert_eq!(l.transmit(SimTime::ZERO, 1500), TxResult::Dropped);
        assert_eq!(l.drops(), 1);
        assert_eq!(l.tx_packets(), 2);
        assert_eq!(l.tx_bytes(), 3000);
    }

    #[test]
    fn queue_frees_after_transmission() {
        let mut l = LinkState::new(LinkSpec::gig().with_queue(1));
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1500),
            TxResult::Delivered { .. }
        ));
        assert_eq!(l.transmit(SimTime::ZERO, 1500), TxResult::Dropped);
        // 20 µs later the first packet has left the queue.
        assert!(matches!(
            l.transmit(SimTime::from_nanos(20_000), 1500),
            TxResult::Delivered { .. }
        ));
    }

    #[test]
    fn down_link_drops_everything_as_faults() {
        let mut l = LinkState::new(LinkSpec::gig());
        l.set_up(false);
        assert!(!l.is_up());
        assert_eq!(l.transmit(SimTime::ZERO, 1500), TxResult::Dropped);
        assert_eq!(l.faulted(), 1);
        assert_eq!(l.drops(), 0); // not a queue drop
        l.set_up(true);
        assert!(matches!(
            l.transmit(SimTime::from_secs(1), 1500),
            TxResult::Delivered { .. }
        ));
    }

    #[test]
    fn extra_delay_adds_to_arrival() {
        let mut l = LinkState::new(LinkSpec::gig());
        l.set_extra_delay(SimDuration::from_millis(3));
        match l.transmit(SimTime::ZERO, 1500) {
            TxResult::Delivered { arrives_at } => {
                assert_eq!(arrives_at, SimTime::from_nanos(12_000 + 5_000 + 3_000_000));
            }
            TxResult::Dropped => panic!("should deliver"),
        }
        l.set_extra_delay(SimDuration::ZERO);
        assert_eq!(l.extra_delay(), SimDuration::ZERO);
    }

    #[test]
    fn tengig_is_ten_times_faster() {
        let mut slow = LinkState::new(LinkSpec::gig());
        let mut fast = LinkState::new(LinkSpec::tengig());
        let ts = match slow.transmit(SimTime::ZERO, 15_000) {
            TxResult::Delivered { arrives_at } => arrives_at,
            _ => panic!(),
        };
        let tf = match fast.transmit(SimTime::ZERO, 15_000) {
            TxResult::Delivered { arrives_at } => arrives_at,
            _ => panic!(),
        };
        let s = ts.as_nanos() - 5_000;
        let f = tf.as_nanos() - 5_000;
        assert_eq!(s, 10 * f);
    }
}
