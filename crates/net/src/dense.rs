//! Dense per-node storage.
//!
//! [`NodeId`]s are small integers handed out contiguously by the topology
//! builder, so a `Vec<Option<T>>` indexed by `NodeId.0` beats a `HashMap`
//! for the per-event device lookups on the simulator's hot path: one bounds
//! check instead of hash + probe, and iteration order is ascending `NodeId`
//! — deterministic by construction, where `HashMap` order depends on the
//! process's random hash seed.

use crate::topology::NodeId;

/// A map from [`NodeId`] to `T`, stored densely by the id's integer value.
///
/// Semantics match the `HashMap<NodeId, T>` subset the simulator uses:
/// `insert` replaces, `get`/`get_mut` return `Option`, iteration yields
/// occupied entries only — but always in ascending `NodeId` order.
#[derive(Debug, Clone, Default)]
pub struct NodeMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> NodeMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        NodeMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or replace the entry for `node`, returning any previous value.
    pub fn insert(&mut self, node: NodeId, value: T) -> Option<T> {
        let idx = node.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The entry for `node`, if present.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<&T> {
        self.slots.get(node.0 as usize)?.as_ref()
    }

    /// Mutable access to the entry for `node`, if present.
    #[inline]
    pub fn get_mut(&mut self, node: NodeId) -> Option<&mut T> {
        self.slots.get_mut(node.0 as usize)?.as_mut()
    }

    /// True if `node` has an entry.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// The entry for `node`, inserting `T::default()` first if absent.
    pub fn entry_or_default(&mut self, node: NodeId) -> &mut T
    where
        T: Default,
    {
        if !self.contains(node) {
            self.insert(node, T::default());
        }
        self.get_mut(node).unwrap()
    }

    /// Occupied `(node, value)` pairs in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (NodeId(i as u32), v)))
    }

    /// Occupied nodes in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Occupied values in ascending node order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Mutable values in ascending node order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// One past the highest id ever inserted — the bound for index walks
    /// that need `get_mut` inside the loop body (no iterator borrow).
    pub fn id_bound(&self) -> u32 {
        self.slots.len() as u32
    }
}

impl<T> IntoIterator for NodeMap<T> {
    type Item = (NodeId, T);
    type IntoIter = std::iter::FilterMap<
        std::iter::Enumerate<std::vec::IntoIter<Option<T>>>,
        fn((usize, Option<T>)) -> Option<(NodeId, T)>,
    >;

    /// Consume the map, yielding `(node, value)` pairs in ascending order.
    fn into_iter(self) -> Self::IntoIter {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|v| (NodeId(i as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut m = NodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(5), "a"), None);
        assert_eq!(m.insert(NodeId(2), "b"), None);
        assert_eq!(m.insert(NodeId(5), "c"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(NodeId(5)), Some(&"c"));
        assert_eq!(m.get(NodeId(3)), None);
        assert_eq!(m.get(NodeId(100)), None);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut m = NodeMap::new();
        for id in [7u32, 1, 4] {
            m.insert(NodeId(id), id * 10);
        }
        let pairs: Vec<_> = m.iter().map(|(n, v)| (n.0, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (4, 40), (7, 70)]);
        assert_eq!(m.keys().map(|n| n.0).collect::<Vec<_>>(), vec![1, 4, 7]);
        assert_eq!(
            m.into_iter().map(|(n, _)| n.0).collect::<Vec<_>>(),
            vec![1, 4, 7]
        );
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut m: NodeMap<Vec<u32>> = NodeMap::new();
        m.entry_or_default(NodeId(3)).push(1);
        m.entry_or_default(NodeId(3)).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(NodeId(3)), Some(&vec![1, 2]));
    }
}
