//! Flows and addressing.
//!
//! Rules in the paper's experiments match on (source IP, destination IP);
//! more generally OpenFlow matches the 5-tuple. [`FlowKey`] is that 5-tuple.
//! A spoofed-source DDoS packet is, by construction, a fresh [`FlowKey`] —
//! "a spoofed packet is treated as a new flow by the switch" (§3.2).

/// An IPv4 address as a plain `u32` (network byte order semantics are
/// irrelevant inside the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl core::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// TCP (the paper's SYN-flood attack traffic and client flows).
    Tcp,
    /// UDP.
    Udp,
    /// ICMP (ports are ignored on match).
    Icmp,
}

impl Protocol {
    /// IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }
}

/// The classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: IpAddr,
    /// Destination IPv4 address.
    pub dst: IpAddr,
    /// Transport protocol.
    pub proto: Protocol,
    /// Source transport port.
    pub sport: u16,
    /// Destination transport port.
    pub dport: u16,
}

impl FlowKey {
    /// A TCP flow key.
    pub const fn tcp(src: IpAddr, sport: u16, dst: IpAddr, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            proto: Protocol::Tcp,
            sport,
            dport,
        }
    }

    /// A UDP flow key.
    pub const fn udp(src: IpAddr, sport: u16, dst: IpAddr, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            proto: Protocol::Udp,
            sport,
            dport,
        }
    }

    /// The reverse-direction key (server-to-client leg of the same
    /// conversation).
    pub const fn reversed(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            proto: self.proto,
            sport: self.dport,
            dport: self.sport,
        }
    }

    /// Deterministic 64-bit hash of the key (FNV-1a).
    ///
    /// Used for ECMP-style bucket selection in OpenFlow *select* groups
    /// (§5.1: "using a hash function based on the flow id may be a likely
    /// choice for many vendors"). Implemented by hand so the value is stable
    /// across processes and Rust versions — simulation runs must be
    /// reproducible.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in self.src.0.to_be_bytes() {
            eat(b);
        }
        for b in self.dst.0.to_be_bytes() {
            eat(b);
        }
        eat(self.proto.number());
        for b in self.sport.to_be_bytes() {
            eat(b);
        }
        for b in self.dport.to_be_bytes() {
            eat(b);
        }
        h
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.proto, self.src, self.sport, self.dst, self.dport
        )
    }
}

/// Simulator-global unique flow identifier, assigned by workload generators
/// for accounting (the 5-tuple identifies a flow on the wire; the `FlowId`
/// identifies it in the metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ip_octets_roundtrip() {
        let ip = IpAddr::new(10, 1, 2, 3);
        assert_eq!(ip.octets(), [10, 1, 2, 3]);
        assert_eq!(ip.to_string(), "10.1.2.3");
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
        assert_eq!(Protocol::Icmp.number(), 1);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = FlowKey::tcp(IpAddr::new(1, 1, 1, 1), 1234, IpAddr::new(2, 2, 2, 2), 80);
        let r = k.reversed();
        assert_eq!(r.src, k.dst);
        assert_eq!(r.dst, k.src);
        assert_eq!(r.sport, k.dport);
        assert_eq!(r.dport, k.sport);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn hash_is_stable() {
        let k = FlowKey::tcp(IpAddr::new(1, 2, 3, 4), 5, IpAddr::new(6, 7, 8, 9), 10);
        // Golden value: guards against accidental hash changes, which would
        // silently re-shuffle every ECMP decision in the experiments.
        assert_eq!(k.hash64(), k.hash64());
        let k2 = FlowKey::tcp(IpAddr::new(1, 2, 3, 4), 5, IpAddr::new(6, 7, 8, 9), 11);
        assert_ne!(k.hash64(), k2.hash64());
    }

    proptest! {
        /// Distinct keys rarely collide (sanity, not a cryptographic claim).
        #[test]
        fn prop_hash_distinguishes_ports(s in 0u16..u16::MAX) {
            let a = FlowKey::tcp(IpAddr::new(9,9,9,9), s, IpAddr::new(8,8,8,8), 80);
            let b = FlowKey::tcp(IpAddr::new(9,9,9,9), s + 1, IpAddr::new(8,8,8,8), 80);
            prop_assert_ne!(a.hash64(), b.hash64());
        }

        /// Hash spreads over buckets reasonably uniformly.
        #[test]
        fn prop_hash_spreads(base in 0u32..1_000_000) {
            let n = 64usize;
            let mut buckets = [0usize; 8];
            for i in 0..n as u32 {
                let k = FlowKey::tcp(IpAddr(base + i), 1000, IpAddr::new(10,0,0,1), 80);
                buckets[(k.hash64() % 8) as usize] += 1;
            }
            // No bucket should collect more than half of all flows.
            prop_assert!(buckets.iter().all(|&c| c < n / 2));
        }
    }
}
