//! Tunnels: pre-installed label-switched paths over the data plane.
//!
//! The Scotch overlay (§4.1) is three classes of tunnels:
//!
//! 1. physical switch → mesh vSwitch (load-distribution tunnels),
//! 2. mesh vSwitch ↔ mesh vSwitch (the full mesh),
//! 3. mesh vSwitch → host vSwitch (delivery tunnels).
//!
//! "Configuration is done largely offline" (§5.6): tunnel label-forwarding
//! entries are installed in switch data planes before the experiment and
//! never consume OFA capacity, so a [`TunnelTable`] lives beside the
//! topology rather than inside the per-switch OpenFlow tables.

use crate::topology::{NodeId, Topology};
use std::collections::HashMap;

/// Identifier of a (unidirectional) tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TunnelId(pub u32);

/// A unidirectional tunnel: an ordered node path from `src()` to `dst()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tunnel {
    /// The tunnel's label / identifier.
    pub id: TunnelId,
    /// Node path, inclusive of both endpoints. Always ≥ 2 nodes.
    pub path: Vec<NodeId>,
}

impl Tunnel {
    /// Entry endpoint.
    pub fn src(&self) -> NodeId {
        self.path[0]
    }

    /// Exit endpoint.
    pub fn dst(&self) -> NodeId {
        *self.path.last().unwrap()
    }

    /// The node after `at` on the tunnel path, or `None` at (or off) the
    /// end.
    pub fn next_hop(&self, at: NodeId) -> Option<NodeId> {
        let idx = self.path.iter().position(|&n| n == at)?;
        self.path.get(idx + 1).copied()
    }
}

/// Registry of all tunnels, with label-forwarding lookup.
#[derive(Debug, Clone, Default)]
pub struct TunnelTable {
    tunnels: Vec<Tunnel>,
    /// (tunnel, current node) -> next hop, precomputed for O(1) forwarding.
    hops: HashMap<(TunnelId, NodeId), NodeId>,
}

impl TunnelTable {
    /// An empty table.
    pub fn new() -> Self {
        TunnelTable::default()
    }

    /// Register a tunnel along the shortest path between `src` and `dst`.
    /// Returns `None` if the endpoints are not connected.
    pub fn add_shortest(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<TunnelId> {
        let path = topo.shortest_path(src, dst)?;
        Some(self.add_path(path))
    }

    /// Register a tunnel along an explicit node path. Panics on paths of
    /// fewer than 2 nodes.
    pub fn add_path(&mut self, path: Vec<NodeId>) -> TunnelId {
        assert!(path.len() >= 2, "a tunnel needs two endpoints");
        let id = TunnelId(self.tunnels.len() as u32);
        for w in path.windows(2) {
            self.hops.insert((id, w[0]), w[1]);
        }
        self.tunnels.push(Tunnel { id, path });
        id
    }

    /// Tunnel lookup by id.
    pub fn get(&self, id: TunnelId) -> Option<&Tunnel> {
        self.tunnels.get(id.0 as usize)
    }

    /// Label-forwarding: the next hop for tunnel `id` at node `at`.
    pub fn next_hop(&self, id: TunnelId, at: NodeId) -> Option<NodeId> {
        self.hops.get(&(id, at)).copied()
    }

    /// The tunnel's exit node.
    pub fn endpoint(&self, id: TunnelId) -> Option<NodeId> {
        self.get(id).map(|t| t.dst())
    }

    /// Number of registered tunnels.
    pub fn len(&self) -> usize {
        self.tunnels.len()
    }

    /// True when no tunnels are registered.
    pub fn is_empty(&self) -> bool {
        self.tunnels.is_empty()
    }

    /// Iterate over all tunnels.
    pub fn iter(&self) -> impl Iterator<Item = &Tunnel> {
        self.tunnels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::topology::NodeKind;

    fn topo() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let s = t.add_node(NodeKind::PhysicalSwitch, "s");
        let m = t.add_node(NodeKind::PhysicalSwitch, "mid");
        let v = t.add_node(NodeKind::VSwitch, "v");
        t.add_duplex_link(s, m, LinkSpec::tengig());
        t.add_duplex_link(m, v, LinkSpec::gig());
        (t, s, m, v)
    }

    #[test]
    fn shortest_tunnel_follows_topology() {
        let (t, s, m, v) = topo();
        let mut tab = TunnelTable::new();
        let id = tab.add_shortest(&t, s, v).unwrap();
        let tun = tab.get(id).unwrap();
        assert_eq!(tun.path, vec![s, m, v]);
        assert_eq!(tun.src(), s);
        assert_eq!(tun.dst(), v);
    }

    #[test]
    fn hop_by_hop_forwarding() {
        let (t, s, m, v) = topo();
        let mut tab = TunnelTable::new();
        let id = tab.add_shortest(&t, s, v).unwrap();
        assert_eq!(tab.next_hop(id, s), Some(m));
        assert_eq!(tab.next_hop(id, m), Some(v));
        assert_eq!(tab.next_hop(id, v), None);
        assert_eq!(tab.endpoint(id), Some(v));
    }

    #[test]
    fn unknown_tunnel_is_none() {
        let tab = TunnelTable::new();
        assert!(tab.get(TunnelId(0)).is_none());
        assert!(tab.next_hop(TunnelId(0), NodeId(0)).is_none());
        assert!(tab.is_empty());
    }

    #[test]
    fn disconnected_endpoints_yield_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::PhysicalSwitch, "a");
        let b = t.add_node(NodeKind::VSwitch, "b");
        let mut tab = TunnelTable::new();
        assert!(tab.add_shortest(&t, a, b).is_none());
    }

    #[test]
    fn tunnel_ids_are_sequential() {
        let (t, s, m, v) = topo();
        let mut tab = TunnelTable::new();
        let a = tab.add_shortest(&t, s, v).unwrap();
        let b = tab.add_shortest(&t, v, s).unwrap();
        let c = tab.add_shortest(&t, s, m).unwrap();
        assert_eq!((a, b, c), (TunnelId(0), TunnelId(1), TunnelId(2)));
        assert_eq!(tab.len(), 3);
        assert_eq!(tab.iter().count(), 3);
    }

    #[test]
    fn next_hop_off_path_is_none() {
        let (t, s, _m, v) = topo();
        let mut tab = TunnelTable::new();
        let id = tab.add_shortest(&t, s, v).unwrap();
        let stranger = NodeId(99);
        assert_eq!(tab.next_hop(id, stranger), None);
        assert_eq!(tab.get(id).unwrap().next_hop(stranger), None);
    }
}
