//! Packets and the MPLS-style label stack.
//!
//! Scotch pushes up to two labels (§5.2): an **outer** tunnel label that
//! identifies the tunnel (and therefore the originating physical switch),
//! and an **inner** label carrying the ingress port at that switch ("an
//! inner MPLS label is pushed into the packet header based on the ingress
//! port"; with GRE, the GRE key plays the same role). The vSwitch strips
//! the labels and attaches the information to the Packet-In metadata.

use crate::flow::{FlowId, FlowKey};
use crate::tunnel::TunnelId;
use scotch_sim::SimTime;

/// One entry of a packet's label stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Outer label: which tunnel the packet rides.
    Tunnel(TunnelId),
    /// Inner label: the ingress port at the originating physical switch.
    IngressPort(u16),
}

/// What role a packet plays in its flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// First packet of a flow (a TCP SYN in the paper's experiments). This
    /// is the packet that triggers the reactive Packet-In path.
    FlowStart,
    /// A subsequent data packet.
    Data,
}

/// A packet's label stack, inline and fixed-capacity.
///
/// Scotch needs at most two labels (outer tunnel + inner ingress port,
/// §5.2), so the stack is two slots stored by value: pushing a label never
/// heap-allocates and [`Packet`] stays `Copy`. The top of the stack is the
/// most recently pushed label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LabelStack {
    slots: [Option<Label>; 2],
}

impl LabelStack {
    /// An empty stack.
    pub const fn new() -> Self {
        LabelStack {
            slots: [None, None],
        }
    }

    /// Push a label. Panics beyond two labels: the protocol never nests
    /// deeper, so a third push is a routing bug, not a resource limit.
    pub fn push(&mut self, label: Label) {
        if self.slots[0].is_none() {
            self.slots[0] = Some(label);
        } else if self.slots[1].is_none() {
            self.slots[1] = Some(label);
        } else {
            panic!("label stack overflow: Scotch pushes at most 2 labels (§5.2)");
        }
    }

    /// Pop the top label.
    pub fn pop(&mut self) -> Option<Label> {
        if let Some(l) = self.slots[1].take() {
            return Some(l);
        }
        self.slots[0].take()
    }

    /// The top label without popping.
    pub fn top(&self) -> Option<Label> {
        self.slots[1].or(self.slots[0])
    }

    /// Number of labels on the stack.
    pub fn len(&self) -> usize {
        self.slots[0].is_some() as usize + self.slots[1].is_some() as usize
    }

    /// True when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.slots[0].is_none()
    }

    /// Labels bottom-to-top (reversible; wire encoding walks top-down).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Label> {
        self.slots.into_iter().flatten()
    }
}

/// A simulated packet.
///
/// Only headers matter to Scotch, so the "payload" is just a byte count and
/// the whole packet is a small `Copy` value — forwarding it between
/// simulated switches copies a few machine words instead of cloning heap
/// state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// The 5-tuple.
    pub key: FlowKey,
    /// Accounting id of the owning flow.
    pub flow_id: FlowId,
    /// Role within the flow.
    pub kind: PacketKind,
    /// On-wire size in bytes, including headers.
    pub size: u32,
    /// Creation time (for end-to-end latency measurement).
    pub born_at: SimTime,
    /// Sequence number within the flow, 0-based.
    pub seq: u32,
    /// MPLS-style label stack (inline; top is the most recent push).
    pub labels: LabelStack,
    /// Marked true by generators for attack traffic, so metrics can
    /// separate legitimate from malicious flows. Invisible to switches and
    /// controller logic (no cheating: forwarding never reads it).
    pub is_attack: bool,
}

/// Per-label encapsulation overhead in bytes (MPLS shim = 4 bytes; we use
/// the same figure for the GRE-key variant for simplicity).
pub const LABEL_OVERHEAD_BYTES: u32 = 4;

impl Packet {
    /// A flow's first packet (minimum-size TCP SYN unless overridden).
    pub fn flow_start(key: FlowKey, flow_id: FlowId, born_at: SimTime) -> Self {
        Packet {
            key,
            flow_id,
            kind: PacketKind::FlowStart,
            size: 64,
            born_at,
            seq: 0,
            labels: LabelStack::new(),
            is_attack: false,
        }
    }

    /// A subsequent data packet of `size` bytes.
    pub fn data(key: FlowKey, flow_id: FlowId, born_at: SimTime, seq: u32, size: u32) -> Self {
        Packet {
            key,
            flow_id,
            kind: PacketKind::Data,
            size,
            born_at,
            seq,
            labels: LabelStack::new(),
            is_attack: false,
        }
    }

    /// Builder-style attack marking.
    pub fn attack(mut self) -> Self {
        self.is_attack = true;
        self
    }

    /// Builder-style size override.
    pub fn with_size(mut self, size: u32) -> Self {
        self.size = size;
        self
    }

    /// Push a label onto the stack (encapsulation). Grows the wire size.
    pub fn push_label(&mut self, label: Label) {
        self.labels.push(label);
        self.size += LABEL_OVERHEAD_BYTES;
    }

    /// Pop the top label (decapsulation). Shrinks the wire size.
    pub fn pop_label(&mut self) -> Option<Label> {
        let l = self.labels.pop();
        if l.is_some() {
            self.size = self.size.saturating_sub(LABEL_OVERHEAD_BYTES);
        }
        l
    }

    /// Top of the label stack without popping.
    pub fn top_label(&self) -> Option<Label> {
        self.labels.top()
    }

    /// True if the packet currently rides a tunnel (outer label present).
    pub fn is_tunneled(&self) -> bool {
        matches!(self.top_label(), Some(Label::Tunnel(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::IpAddr;

    fn key() -> FlowKey {
        FlowKey::tcp(IpAddr::new(10, 0, 0, 1), 1234, IpAddr::new(10, 0, 1, 1), 80)
    }

    #[test]
    fn label_stack_lifo() {
        let mut p = Packet::flow_start(key(), FlowId(1), SimTime::ZERO);
        let base = p.size;
        p.push_label(Label::IngressPort(3));
        p.push_label(Label::Tunnel(TunnelId(7)));
        assert_eq!(p.size, base + 2 * LABEL_OVERHEAD_BYTES);
        assert!(p.is_tunneled());
        assert_eq!(p.pop_label(), Some(Label::Tunnel(TunnelId(7))));
        assert!(!p.is_tunneled());
        assert_eq!(p.pop_label(), Some(Label::IngressPort(3)));
        assert_eq!(p.pop_label(), None);
        assert_eq!(p.size, base);
    }

    #[test]
    fn top_label_peeks() {
        let mut p = Packet::flow_start(key(), FlowId(1), SimTime::ZERO);
        assert_eq!(p.top_label(), None);
        p.push_label(Label::Tunnel(TunnelId(1)));
        assert_eq!(p.top_label(), Some(Label::Tunnel(TunnelId(1))));
        assert_eq!(p.labels.len(), 1);
    }

    #[test]
    fn builders() {
        let p = Packet::data(key(), FlowId(2), SimTime::ZERO, 5, 1500)
            .attack()
            .with_size(900);
        assert!(p.is_attack);
        assert_eq!(p.size, 900);
        assert_eq!(p.seq, 5);
        assert_eq!(p.kind, PacketKind::Data);
    }

    #[test]
    fn pop_on_empty_does_not_underflow_size() {
        let mut p = Packet::flow_start(key(), FlowId(1), SimTime::ZERO).with_size(2);
        assert_eq!(p.pop_label(), None);
        assert_eq!(p.size, 2);
    }
}
