#![warn(missing_docs)]

//! # scotch-net
//!
//! Network substrate for the Scotch reproduction: addressing, the 5-tuple
//! flow abstraction, packets carrying an MPLS-style label stack, links with
//! finite bandwidth / propagation delay / drop-tail queues, the topology
//! graph (with waypoint routing for middlebox chains), and tunnels.
//!
//! The paper's Scotch overlay is built from tunnels (GRE / MPLS /
//! MAC-in-MAC, §4.1) riding the underlying SDN data plane. We model a
//! tunnel as a pre-installed label-switched path: intermediate switches
//! forward by the *outer* label in their data plane without any OFA
//! involvement, exactly the property Scotch exploits ("when the new flows
//! are tunneled to vSwitches there is no additional load on the OFA").

pub mod dense;
pub mod flow;
pub mod link;
pub mod packet;
pub mod partition;
pub mod topology;
pub mod tunnel;

pub use dense::NodeMap;
pub use flow::{FlowId, FlowKey, IpAddr, Protocol};
pub use link::{LinkId, LinkSpec, TxResult};
pub use packet::{Label, LabelStack, Packet, PacketKind};
pub use partition::Partition;
pub use topology::{NodeId, NodeKind, PortId, Topology};
pub use tunnel::{Tunnel, TunnelId, TunnelTable};
