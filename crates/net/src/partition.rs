//! Shard partition map for conservative parallel simulation.
//!
//! A [`Partition`] assigns every node of a [`Topology`] to a shard. Shard 0
//! is the hub: it holds the controller, the spine, and every node not named
//! by a region; each region (a rack in the Scotch topologies) is folded onto
//! one of the remaining shards round-robin. The partition also computes the
//! *lookahead* of the cut — the minimum propagation delay over links whose
//! endpoints live on different shards — which bounds how far shards may run
//! ahead of each other between barriers without missing a cross-shard
//! arrival.

use crate::topology::{NodeId, Topology};
use scotch_sim::SimDuration;

/// The smallest lookahead a partition is allowed to have. An inter-shard
/// link with propagation below this floor would force epochs so short that
/// the barrier overhead dominates; such topologies are rejected outright at
/// construction rather than silently crawling.
pub const MIN_LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

/// Node → shard assignment derived from region lists.
#[derive(Debug, Clone)]
pub struct Partition {
    shard_of: Vec<u32>,
    shards: u32,
}

impl Partition {
    /// Build a partition of `node_count` nodes from `regions`, using at most
    /// `max_shards` shards. Nodes absent from every region land on shard 0;
    /// region `r` maps to shard `1 + (r mod (shards - 1))`. The effective
    /// shard count is `min(max_shards, regions + 1)` and is clamped to at
    /// least 1; with one effective shard everything is shard 0.
    pub fn by_regions(node_count: usize, regions: &[Vec<NodeId>], max_shards: usize) -> Partition {
        let shards = max_shards.clamp(1, regions.len() + 1) as u32;
        let mut shard_of = vec![0u32; node_count];
        if shards > 1 {
            for (r, region) in regions.iter().enumerate() {
                let s = 1 + (r as u32) % (shards - 1);
                for node in region {
                    shard_of[node.0 as usize] = s;
                }
            }
        }
        Partition { shard_of, shards }
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.shard_of[node.0 as usize]
    }

    /// True when the partition is degenerate (one shard — plain sequential
    /// execution).
    pub fn is_trivial(&self) -> bool {
        self.shards <= 1
    }

    /// Nodes owned by each shard, indexed by shard id — the lane-composition
    /// column of a scaling report.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Minimum propagation delay over links whose endpoints are on
    /// different shards, or `None` when no link crosses the cut.
    ///
    /// Propagation is a hard lower bound on a link's delivery delay
    /// (serialization and queueing only add to it), so this is a valid
    /// conservative lookahead for the cut.
    pub fn min_cross_propagation(&self, topo: &Topology) -> Option<SimDuration> {
        let mut min: Option<SimDuration> = None;
        for l in 0..topo.link_count() {
            let (from, _, to, _) = topo.link_endpoints(crate::LinkId(l as u32));
            if self.shard_of(from) != self.shard_of(to) {
                let p = topo.link_state(crate::LinkId(l as u32)).spec().propagation;
                min = Some(min.map_or(p, |m| m.min(p)));
            }
        }
        min
    }

    /// Validate that every inter-shard link clears [`MIN_LOOKAHEAD`].
    ///
    /// Returns the cut's lookahead contribution on success (`None` when no
    /// link crosses the cut). A cross-shard link with propagation below the
    /// floor makes conservative epochs useless, so scenario construction
    /// must reject it.
    pub fn validate_lookahead(&self, topo: &Topology) -> Result<Option<SimDuration>, String> {
        for l in 0..topo.link_count() {
            let (from, _, to, _) = topo.link_endpoints(crate::LinkId(l as u32));
            if self.shard_of(from) != self.shard_of(to) {
                let p = topo.link_state(crate::LinkId(l as u32)).spec().propagation;
                if p < MIN_LOOKAHEAD {
                    return Err(format!(
                        "inter-shard link {} -> {} has propagation {}ns, below the \
                         {}ns lookahead floor; widen the link or merge the regions",
                        topo.name(from),
                        topo.name(to),
                        p.as_nanos(),
                        MIN_LOOKAHEAD.as_nanos()
                    ));
                }
            }
        }
        Ok(self.min_cross_propagation(topo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeKind;
    use crate::LinkSpec;

    fn two_rack_topo() -> (Topology, Vec<Vec<NodeId>>) {
        let mut t = Topology::new();
        let spine = t.add_node(NodeKind::PhysicalSwitch, "spine");
        let tor0 = t.add_node(NodeKind::PhysicalSwitch, "tor0");
        let tor1 = t.add_node(NodeKind::PhysicalSwitch, "tor1");
        t.add_duplex_link(spine, tor0, LinkSpec::tengig());
        t.add_duplex_link(spine, tor1, LinkSpec::tengig());
        (t, vec![vec![tor0], vec![tor1]])
    }

    #[test]
    fn regions_fold_round_robin() {
        let (t, regions) = two_rack_topo();
        let p = Partition::by_regions(t.node_count(), &regions, 2);
        assert_eq!(p.shards(), 2);
        assert_eq!(p.shard_of(NodeId(0)), 0); // spine: hub
        assert_eq!(p.shard_of(NodeId(1)), 1);
        assert_eq!(p.shard_of(NodeId(2)), 1); // folded onto the same shard
        let p3 = Partition::by_regions(t.node_count(), &regions, 8);
        assert_eq!(p3.shards(), 3); // clamped to regions + 1
        assert_eq!(p3.shard_of(NodeId(1)), 1);
        assert_eq!(p3.shard_of(NodeId(2)), 2);
    }

    #[test]
    fn shard_sizes_cover_every_node() {
        let (t, regions) = two_rack_topo();
        let p = Partition::by_regions(t.node_count(), &regions, 3);
        let sizes = p.shard_sizes();
        assert_eq!(sizes, vec![1, 1, 1]); // spine on hub, one tor per shard
        assert_eq!(sizes.iter().sum::<usize>(), t.node_count());
    }

    #[test]
    fn trivial_partition_is_all_shard_zero() {
        let (t, regions) = two_rack_topo();
        let p = Partition::by_regions(t.node_count(), &regions, 1);
        assert!(p.is_trivial());
        assert!((0..t.node_count()).all(|n| p.shard_of(NodeId(n as u32)) == 0));
        assert_eq!(p.min_cross_propagation(&t), None);
    }

    #[test]
    fn cross_propagation_is_cut_minimum() {
        let (t, regions) = two_rack_topo();
        let p = Partition::by_regions(t.node_count(), &regions, 3);
        // tengig propagation is 5 µs.
        assert_eq!(
            p.min_cross_propagation(&t),
            Some(SimDuration::from_micros(5))
        );
        assert!(p.validate_lookahead(&t).is_ok());
    }

    #[test]
    fn sub_floor_cross_link_is_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::PhysicalSwitch, "a");
        let b = t.add_node(NodeKind::PhysicalSwitch, "b");
        t.add_duplex_link(a, b, LinkSpec::gbps(10.0, 0)); // zero propagation
        let p = Partition::by_regions(t.node_count(), &[vec![b]], 2);
        let err = p.validate_lookahead(&t).unwrap_err();
        assert!(err.contains("lookahead floor"), "{err}");
    }
}
