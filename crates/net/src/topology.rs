//! The network graph: nodes, ports, links, and path computation.
//!
//! The topology is the substrate both for the *physical* SDN network and
//! for the Scotch overlay's tunnels (which ride the same links). The
//! OpenFlow controller is **not** a topology node: per the testbed setup
//! (Fig. 2) it hangs off each switch's management port, which we model as a
//! dedicated control channel in `scotch-switch` rather than as data-plane
//! links.

use crate::link::{LinkId, LinkSpec, LinkState, TxResult};
use scotch_sim::{SimDuration, SimRng, SimTime};
use std::collections::{HashMap, VecDeque};

/// Identifier of a node (switch, vSwitch, host, middlebox).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a port local to one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// What kind of device a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Hardware OpenFlow switch (Pica8 / HP class): fast data plane, slow
    /// OFA.
    PhysicalSwitch,
    /// Open vSwitch on a server: fast control agent, slower data plane.
    VSwitch,
    /// An end host (client, server, attacker).
    Host,
    /// A middlebox (firewall, load balancer).
    Middlebox,
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    name: String,
    /// Port table: port index -> attached outgoing link.
    ports: Vec<Option<LinkId>>,
}

/// One directed link's endpoints.
#[derive(Debug, Clone, Copy)]
struct Ends {
    from: NodeId,
    from_port: PortId,
    to: NodeId,
    to_port: PortId,
}

/// The network graph. Owns all dynamic link state.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<(Ends, LinkState)>,
    /// adjacency[from] = list of (neighbor, out_port, link)
    adjacency: HashMap<NodeId, Vec<(NodeId, PortId, LinkId)>>,
    /// Fault-injection RNG; random link loss is active only when set.
    fault_rng: Option<SimRng>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node of the given kind; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            name: name.into(),
            ports: Vec::new(),
        });
        self.adjacency.entry(id).or_default();
        id
    }

    /// Node kind lookup. Panics on unknown id (ids only come from
    /// `add_node`).
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.0 as usize].kind
    }

    /// Human-readable node name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| self.kind(*n) == kind)
            .collect()
    }

    /// All control-plane-attached switches (physical switches and
    /// vSwitches), in ascending id order — the set a controller cluster
    /// assigns mastership over.
    pub fn switch_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| matches!(self.kind(*n), NodeKind::PhysicalSwitch | NodeKind::VSwitch))
            .collect()
    }

    fn alloc_port(&mut self, node: NodeId, link: LinkId) -> PortId {
        let ports = &mut self.nodes[node.0 as usize].ports;
        let id = PortId(ports.len() as u16);
        ports.push(Some(link));
        id
    }

    /// Connect `a` and `b` with a duplex link; returns the two directed
    /// link ids `(a→b, b→a)`. Fresh ports are allocated on both nodes.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        assert_ne!(a, b, "self-links are not allowed");
        let ab = LinkId(self.links.len() as u32);
        let a_port = self.alloc_port(a, ab);
        let ba = LinkId(self.links.len() as u32 + 1);
        let b_port = self.alloc_port(b, ba);

        self.links.push((
            Ends {
                from: a,
                from_port: a_port,
                to: b,
                to_port: b_port,
            },
            LinkState::new(spec),
        ));
        self.links.push((
            Ends {
                from: b,
                from_port: b_port,
                to: a,
                to_port: a_port,
            },
            LinkState::new(spec),
        ));
        self.adjacency.get_mut(&a).unwrap().push((b, a_port, ab));
        self.adjacency.get_mut(&b).unwrap().push((a, b_port, ba));
        (ab, ba)
    }

    /// The far end of the link attached to `(node, port)`, if any.
    pub fn neighbor(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        let link = self.nodes[node.0 as usize]
            .ports
            .get(port.0 as usize)
            .copied()
            .flatten()?;
        let ends = self.links[link.0 as usize].0;
        Some((ends.to, ends.to_port))
    }

    /// The local port on `from` whose link leads to neighbor `to` (first
    /// match wins; parallel links are rare in our topologies).
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<PortId> {
        self.adjacency
            .get(&from)?
            .iter()
            .find(|(nbr, _, _)| *nbr == to)
            .map(|(_, port, _)| *port)
    }

    /// All local ports on `from` whose links lead to neighbor `to`, in
    /// port order. Parallel links (e.g. the two legs of a middlebox
    /// hairpin) return multiple entries; by convention the first is the
    /// "entry" leg and the last the "return" leg.
    pub fn ports_towards(&self, from: NodeId, to: NodeId) -> Vec<PortId> {
        self.adjacency
            .get(&from)
            .map(|v| {
                v.iter()
                    .filter(|(nbr, _, _)| *nbr == to)
                    .map(|(_, port, _)| *port)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All connected ports of a node, in port order.
    pub fn ports(&self, node: NodeId) -> Vec<PortId> {
        self.port_iter(node).collect()
    }

    /// Connected ports of a node, in port order, without allocating (the
    /// per-packet emit path needs only the first port).
    pub fn port_iter(&self, node: NodeId) -> impl Iterator<Item = PortId> + '_ {
        self.nodes[node.0 as usize]
            .ports
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_some())
            .map(|(i, _)| PortId(i as u16))
    }

    /// Direct neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(&node)
            .map(|v| v.iter().map(|(n, _, _)| *n).collect())
            .unwrap_or_default()
    }

    /// Enable random link loss (smoltcp-style fault injection): links with
    /// a nonzero `loss` probability drop packets using this seeded RNG.
    pub fn enable_fault_injection(&mut self, rng: SimRng) {
        self.fault_rng = Some(rng);
    }

    /// True when random link loss is armed. Sharded execution checks this:
    /// per-shard topology clones would each advance their own copy of the
    /// loss RNG, so lossy-link scenarios must run sequentially.
    pub fn has_fault_injection(&self) -> bool {
        self.fault_rng.is_some()
    }

    /// Offer a packet to the link attached to `(from, out_port)`.
    ///
    /// On success returns where and when the packet lands.
    pub fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        out_port: PortId,
        size_bytes: u32,
    ) -> Option<(NodeId, PortId, SimTime)> {
        let link = self.nodes[from.0 as usize]
            .ports
            .get(out_port.0 as usize)
            .copied()
            .flatten()?;
        let (ends, state) = &mut self.links[link.0 as usize];
        if state.spec().loss > 0.0 {
            if let Some(rng) = self.fault_rng.as_mut() {
                if rng.chance(state.spec().loss) {
                    state.record_fault();
                    return None;
                }
            }
        }
        match state.transmit(now, size_bytes) {
            TxResult::Delivered { arrives_at } => Some((ends.to, ends.to_port, arrives_at)),
            TxResult::Dropped => None,
        }
    }

    /// Total packets lost to injected link faults.
    pub fn total_link_faults(&self) -> u64 {
        self.links.iter().map(|(_, s)| s.faulted()).sum()
    }

    /// Immutable access to a directed link's state (for metrics).
    pub fn link_state(&self, link: LinkId) -> &LinkState {
        &self.links[link.0 as usize].1
    }

    /// Set one directed link's administrative state (fault injection).
    /// Packets offered to a down link are dropped and counted as faults.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.links[link.0 as usize].1.set_up(up);
    }

    /// Set one directed link's extra one-way latency (fault injection:
    /// degraded link). [`SimDuration::ZERO`] restores the link.
    pub fn set_link_extra_delay(&mut self, link: LinkId, d: SimDuration) {
        self.links[link.0 as usize].1.set_extra_delay(d);
    }

    /// A directed link's endpoints as `(from, from_port, to, to_port)`.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, PortId, NodeId, PortId) {
        let e = self.links[link.0 as usize].0;
        (e.from, e.from_port, e.to, e.to_port)
    }

    /// Total packets dropped across all link queues.
    pub fn total_link_drops(&self) -> u64 {
        self.links.iter().map(|(_, s)| s.drops()).sum()
    }

    /// Adopt the link states of `other` (a structurally identical clone of
    /// this topology) for every directed link whose transmitting endpoint
    /// satisfies `owns_from`.
    ///
    /// Sharded execution clones the topology per shard; each shard only
    /// ever transmits on links whose `from` node it owns, so merging the
    /// owned states back reconstructs the counters a sequential run would
    /// have accumulated in one topology.
    pub fn adopt_link_states(&mut self, other: &Topology, owns_from: impl Fn(NodeId) -> bool) {
        assert_eq!(
            self.links.len(),
            other.links.len(),
            "adopt_link_states requires structurally identical topologies"
        );
        for (ours, theirs) in self.links.iter_mut().zip(other.links.iter()) {
            if owns_from(theirs.0.from) {
                ours.1 = theirs.1.clone();
            }
        }
    }

    /// Unweighted shortest path (BFS by hop count) from `src` to `dst`,
    /// inclusive of both endpoints. Ties break toward lower node ids, so
    /// paths are deterministic.
    ///
    /// `permit` filters which nodes may be *transited* (endpoints are always
    /// permitted); the controller uses it to keep host-bound traffic from
    /// being routed "through" another host and, in Scotch, to route around
    /// control-plane-congested switches.
    pub fn shortest_path_filtered(
        &self,
        src: NodeId,
        dst: NodeId,
        permit: impl Fn(NodeId) -> bool,
    ) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(src);
        prev.insert(src, src);
        while let Some(n) = queue.pop_front() {
            let mut nbrs = self.neighbors(n);
            nbrs.sort_unstable();
            for nbr in nbrs {
                if prev.contains_key(&nbr) {
                    continue;
                }
                if nbr != dst && !permit(nbr) {
                    continue;
                }
                prev.insert(nbr, n);
                if nbr == dst {
                    // Reconstruct.
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(nbr);
            }
        }
        None
    }

    /// Unweighted shortest path permitting transit through switches only
    /// (hosts and middleboxes are never transit nodes).
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.shortest_path_filtered(src, dst, |n| {
            matches!(self.kind(n), NodeKind::PhysicalSwitch | NodeKind::VSwitch)
        })
    }

    /// Shortest path visiting the given waypoints in order (middlebox
    /// chaining, §5.4). Concatenates per-segment shortest paths, permitting
    /// transit through switches; the waypoints themselves are endpoints of
    /// their segments.
    pub fn path_via(&self, src: NodeId, waypoints: &[NodeId], dst: NodeId) -> Option<Vec<NodeId>> {
        let mut full: Vec<NodeId> = vec![src];
        let mut cur = src;
        for &wp in waypoints.iter().chain(std::iter::once(&dst)) {
            let seg = self.shortest_path(cur, wp)?;
            full.extend_from_slice(&seg[1..]);
            cur = wp;
        }
        Some(full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let s = t.add_node(NodeKind::PhysicalSwitch, "s");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex_link(a, s, LinkSpec::gig());
        t.add_duplex_link(s, b, LinkSpec::gig());
        (t, a, s, b)
    }

    #[test]
    fn nodes_and_links_register() {
        let (t, a, s, b) = line3();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 4); // two duplex pairs
        assert_eq!(t.kind(s), NodeKind::PhysicalSwitch);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.nodes_of_kind(NodeKind::Host), vec![a, b]);
    }

    #[test]
    fn neighbor_lookup() {
        let (t, a, s, _b) = line3();
        let p = t.port_towards(a, s).unwrap();
        let (peer, peer_port) = t.neighbor(a, p).unwrap();
        assert_eq!(peer, s);
        // The far end's reverse lookup comes back to us.
        let (back, back_port) = t.neighbor(peer, peer_port).unwrap();
        assert_eq!(back, a);
        assert_eq!(back_port, p);
    }

    #[test]
    fn shortest_path_goes_through_switch() {
        let (t, a, s, b) = line3();
        assert_eq!(t.shortest_path(a, b).unwrap(), vec![a, s, b]);
    }

    #[test]
    fn hosts_are_not_transit() {
        // a - h - b where h is a host: no path a->b through it.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let h = t.add_node(NodeKind::Host, "h");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex_link(a, h, LinkSpec::gig());
        t.add_duplex_link(h, b, LinkSpec::gig());
        assert_eq!(t.shortest_path(a, b), None);
        // But a path to the host itself is fine.
        assert_eq!(t.shortest_path(a, h).unwrap(), vec![a, h]);
    }

    #[test]
    fn bfs_prefers_fewer_hops() {
        // Diamond: a-s1-b and a-s2-s3-b; expect the 2-hop route.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let s1 = t.add_node(NodeKind::PhysicalSwitch, "s1");
        let s2 = t.add_node(NodeKind::PhysicalSwitch, "s2");
        let s3 = t.add_node(NodeKind::PhysicalSwitch, "s3");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex_link(a, s1, LinkSpec::gig());
        t.add_duplex_link(s1, b, LinkSpec::gig());
        t.add_duplex_link(a, s2, LinkSpec::gig());
        t.add_duplex_link(s2, s3, LinkSpec::gig());
        t.add_duplex_link(s3, b, LinkSpec::gig());
        assert_eq!(t.shortest_path(a, b).unwrap(), vec![a, s1, b]);
    }

    #[test]
    fn filtered_path_avoids_nodes() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let s1 = t.add_node(NodeKind::PhysicalSwitch, "s1");
        let s2 = t.add_node(NodeKind::PhysicalSwitch, "s2");
        let s3 = t.add_node(NodeKind::PhysicalSwitch, "s3");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex_link(a, s1, LinkSpec::gig());
        t.add_duplex_link(s1, b, LinkSpec::gig());
        t.add_duplex_link(a, s2, LinkSpec::gig());
        t.add_duplex_link(s2, s3, LinkSpec::gig());
        t.add_duplex_link(s3, b, LinkSpec::gig());
        let p = t
            .shortest_path_filtered(a, b, |n| n != s1 && n != a && n != b)
            .unwrap();
        assert_eq!(p, vec![a, s2, s3, b]);
    }

    #[test]
    fn path_via_waypoints() {
        // a - su - fw - sd - b with a direct su-sd shortcut; via fw must
        // cross the firewall.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let su = t.add_node(NodeKind::PhysicalSwitch, "su");
        let fw = t.add_node(NodeKind::Middlebox, "fw");
        let sd = t.add_node(NodeKind::PhysicalSwitch, "sd");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex_link(a, su, LinkSpec::gig());
        t.add_duplex_link(su, fw, LinkSpec::gig());
        t.add_duplex_link(fw, sd, LinkSpec::gig());
        t.add_duplex_link(su, sd, LinkSpec::gig());
        t.add_duplex_link(sd, b, LinkSpec::gig());
        let direct = t.shortest_path(a, b).unwrap();
        assert_eq!(direct, vec![a, su, sd, b]);
        let via = t.path_via(a, &[fw], b).unwrap();
        assert_eq!(via, vec![a, su, fw, sd, b]);
    }

    #[test]
    fn transmit_moves_packets_between_nodes() {
        let (mut t, a, s, _b) = line3();
        let p = t.port_towards(a, s).unwrap();
        let (to, _in_port, at) = t.transmit(SimTime::ZERO, a, p, 1500).unwrap();
        assert_eq!(to, s);
        assert!(at > SimTime::ZERO);
    }

    #[test]
    fn transmit_counts_drops() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex_link(a, b, LinkSpec::gig().with_queue(1));
        let p = t.port_towards(a, b).unwrap();
        assert!(t.transmit(SimTime::ZERO, a, p, 1500).is_some());
        assert!(t.transmit(SimTime::ZERO, a, p, 1500).is_none());
        assert_eq!(t.total_link_drops(), 1);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let (t, a, _s, _b) = line3();
        assert_eq!(t.shortest_path(a, a).unwrap(), vec![a]);
    }

    #[test]
    fn no_path_in_disconnected_graph() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        assert_eq!(t.shortest_path(a, b), None);
    }
}
