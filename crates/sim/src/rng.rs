//! Seeded randomness for workloads and load balancing.
//!
//! Everything stochastic in the reproduction — attacker packet spacing,
//! Pareto flow sizes, spoofed addresses, ECMP tie-breaks — draws from a
//! [`SimRng`] so a `(seed, parameters)` pair fully determines a run.

/// A deterministic random source: xoshiro256++ seeded via SplitMix64, with
/// the distribution helpers the workloads need.
///
/// Self-contained on purpose — the workspace builds with no external
/// crates, and a fixed in-repo generator means a `(seed, parameters)` pair
/// produces the same run on every toolchain, forever.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into four non-zero state words (the all-zero
        // state is xoshiro's single fixed point).
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child stream; used to give each workload
    /// component its own stream so adding one component does not perturb
    /// another's draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh material from the parent.
        let base: u64 = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform integer in `[0, n)` without modulo bias (rejection sampling).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Reject draws from the biased tail of the 64-bit range.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice set");
        self.below(n as u64) as usize
    }

    /// Uniform `u32` over the full range (used for spoofed IPv4 addresses).
    pub fn u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponential variate with the given mean (inter-arrival times of a
    /// Poisson process). Mean must be positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid exponential mean");
        // Inverse CDF; `1 - u` avoids ln(0).
        let u: f64 = self.f64();
        -mean * (1.0 - u).ln()
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha`.
    ///
    /// This is the canonical heavy-tailed flow-size model: most flows are
    /// mice near `lo`, a small fraction are elephants near `hi`, matching
    /// the measurement the paper cites ("the majority of link capacity is
    /// consumed by a small fraction of large flows").
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "invalid Pareto params");
        let u: f64 = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Pick a uniformly random element of a slice. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..32 {
            assert_eq!(c1.u64(), c2.u64());
        }
        let mut parent = SimRng::new(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(
            (0..8).map(|_| a.u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exp_mean_is_approximately_right() {
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let avg = sum / n as f64;
        assert!((avg - mean).abs() < 0.1, "avg={avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_rate_close_to_p() {
        let mut rng = SimRng::new(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    proptest! {
        /// Bounded Pareto samples always lie in [lo, hi].
        #[test]
        fn prop_pareto_bounds(seed in 0u64..1000, alpha in 0.5f64..3.0) {
            let mut rng = SimRng::new(seed);
            for _ in 0..100 {
                let x = rng.bounded_pareto(10.0, 10_000.0, alpha);
                prop_assert!((10.0..=10_000.0 + 1e-6).contains(&x), "x={x}");
            }
        }

        /// range_u64 respects its bounds.
        #[test]
        fn prop_range_bounds(seed: u64, lo in 0u64..100, span in 1u64..1000) {
            let mut rng = SimRng::new(seed);
            let hi = lo + span;
            for _ in 0..50 {
                let x = rng.range_u64(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        /// shuffle produces a permutation.
        #[test]
        fn prop_shuffle_is_permutation(seed: u64, n in 0usize..64) {
            let mut rng = SimRng::new(seed);
            let mut v: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut v);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With alpha≈1.2 a small fraction of samples should carry most mass.
        let mut rng = SimRng::new(17);
        let mut sizes: Vec<f64> = (0..20_000)
            .map(|_| rng.bounded_pareto(1.0, 100_000.0, 1.2))
            .collect();
        sizes.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = sizes.iter().sum();
        let top10: f64 = sizes.iter().take(sizes.len() / 10).sum();
        assert!(top10 / total > 0.5, "top 10% carries {:.2}", top10 / total);
    }
}
