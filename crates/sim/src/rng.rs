//! Seeded randomness for workloads and load balancing.
//!
//! Everything stochastic in the reproduction — attacker packet spacing,
//! Pareto flow sizes, spoofed addresses, ECMP tie-breaks — draws from a
//! [`SimRng`] so a `(seed, parameters)` pair fully determines a run.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source. Thin wrapper over [`StdRng`] with the
/// distribution helpers the workloads need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream; used to give each workload
    /// component its own stream so adding one component does not perturb
    /// another's draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh material from the parent.
        let base: u64 = self.inner.gen();
        SimRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        Uniform::new(lo, hi).sample(&mut self.inner)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice set");
        self.inner.gen_range(0..n)
    }

    /// Uniform `u32` over the full range (used for spoofed IPv4 addresses).
    pub fn u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponential variate with the given mean (inter-arrival times of a
    /// Poisson process). Mean must be positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid exponential mean");
        // Inverse CDF; `1 - u` avoids ln(0).
        let u: f64 = self.inner.gen();
        -mean * (1.0 - u).ln()
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha`.
    ///
    /// This is the canonical heavy-tailed flow-size model: most flows are
    /// mice near `lo`, a small fraction are elephants near `hi`, matching
    /// the measurement the paper cites ("the majority of link capacity is
    /// consumed by a small fraction of large flows").
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "invalid Pareto params");
        let u: f64 = self.inner.gen();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Pick a uniformly random element of a slice. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

impl rand::RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        rand::RngCore::next_u32(&mut self.inner)
    }
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(&mut self.inner, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        rand::RngCore::try_fill_bytes(&mut self.inner, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..32 {
            assert_eq!(c1.u64(), c2.u64());
        }
        let mut parent = SimRng::new(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(
            (0..8).map(|_| a.u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exp_mean_is_approximately_right() {
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let avg = sum / n as f64;
        assert!((avg - mean).abs() < 0.1, "avg={avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_rate_close_to_p() {
        let mut rng = SimRng::new(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    proptest! {
        /// Bounded Pareto samples always lie in [lo, hi].
        #[test]
        fn prop_pareto_bounds(seed in 0u64..1000, alpha in 0.5f64..3.0) {
            let mut rng = SimRng::new(seed);
            for _ in 0..100 {
                let x = rng.bounded_pareto(10.0, 10_000.0, alpha);
                prop_assert!((10.0..=10_000.0 + 1e-6).contains(&x), "x={x}");
            }
        }

        /// range_u64 respects its bounds.
        #[test]
        fn prop_range_bounds(seed: u64, lo in 0u64..100, span in 1u64..1000) {
            let mut rng = SimRng::new(seed);
            let hi = lo + span;
            for _ in 0..50 {
                let x = rng.range_u64(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        /// shuffle produces a permutation.
        #[test]
        fn prop_shuffle_is_permutation(seed: u64, n in 0usize..64) {
            let mut rng = SimRng::new(seed);
            let mut v: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut v);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With alpha≈1.2 a small fraction of samples should carry most mass.
        let mut rng = SimRng::new(17);
        let mut sizes: Vec<f64> = (0..20_000)
            .map(|_| rng.bounded_pareto(1.0, 100_000.0, 1.2))
            .collect();
        sizes.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = sizes.iter().sum();
        let top10: f64 = sizes.iter().take(sizes.len() / 10).sum();
        assert!(top10 / total > 0.5, "top 10% carries {:.2}", top10 / total);
    }
}
