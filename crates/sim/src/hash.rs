//! Deterministic, fast hashing for hot-path maps.
//!
//! `std`'s default hasher is SipHash-1-3 behind a per-process random seed:
//! robust against hash-flooding, but slow for the small fixed-width keys
//! (`FlowId`, `NodeId`, 5-tuples) that dominate the simulator's hot path,
//! and its random seed makes *iteration order* differ between processes —
//! poison for a bit-reproducible engine. This module provides the FxHash
//! algorithm (the compiler's `rustc-hash`) implemented in-tree so the
//! workspace stays dependency-free: a multiply-xor mix with no random
//! state. Inputs are simulation-internal identifiers, not attacker-chosen
//! keys, so flood resistance is not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`] — deterministic across processes.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`] — deterministic across processes.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time hasher (multiply-xor, no random state).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume full words, then the tail, mirroring rustc-hash.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(b"scotch"), hash_of(b"scotch"));
        assert_ne!(hash_of(b"scotch"), hash_of(b"scotcg"));
        assert_ne!(hash_of(b"a"), hash_of(b"aa"));
    }

    #[test]
    fn integer_writes_match_manual_mix() {
        let mut h = FxHasher::default();
        h.write_u32(7);
        h.write_u64(9);
        let mut m = FxHasher::default();
        m.add_to_hash(7);
        m.add_to_hash(9);
        assert_eq!(h.finish(), m.finish());
    }

    #[test]
    fn map_iteration_is_stable_for_fixed_inserts() {
        // Two maps built the same way iterate the same way — the property
        // the engine's determinism relies on.
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..1000 {
                m.insert(i * 2654435761 % 4093, i);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
