//! Unified metrics registry and self-profiling instruments.
//!
//! Components across the stack historically kept ad-hoc stats structs
//! (`OfaStats`, `SwitchStats`, `VSwitchStats`, `AppStats`). Those structs
//! remain the hot-path increment sites — a plain `+= 1` on a local field is
//! as cheap as instrumentation gets — but the [`MetricsRegistry`] unifies
//! their *external* surface: every figure a run produces is registered under
//! a canonical dotted name and exported through one deterministic
//! [`MetricsSnapshot`], embedded in the `Report` and in sweep manifests.
//!
//! The registry also hosts the live instruments that need history rather
//! than a final value: [`TimeSeries`] sampled periodically from the event
//! loop, and [`Histogram`]s for distributions.
//!
//! [`DispatchProfiler`] is the one deliberate exception to the sim-time-only
//! rule: it measures *wall-clock* dispatch cost per event type for
//! `scotch-cli bench hotpath`. Its output is observability-only and must
//! never feed a golden report (DESIGN.md §10).

use crate::metrics::{Counter, Histogram, RateMeter, TimeSeries};
use crate::time::{SimDuration, SimTime};

/// Handle to a registered [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered [`RateMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateId(usize);

/// Handle to a registered [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to a registered [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A named collection of measurement instruments.
///
/// Registration returns a dense handle; instrument access through a handle
/// is an array index, so periodic sampling from the event loop stays cheap.
/// Names are free-form dotted paths (`"app.packet_ins"`,
/// `"switch.ps0.ofa.packet_in_sent"`).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, Counter)>,
    rates: Vec<(String, RateMeter)>,
    histograms: Vec<(String, Histogram)>,
    series: Vec<(String, TimeSeries)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn find<T>(store: &[(String, T)], name: &str) -> Option<usize> {
        store.iter().position(|(n, _)| n == name)
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = Self::find(&self.counters, name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), Counter::new()));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a rate meter by name.
    pub fn rate_meter(&mut self, name: &str, window: SimDuration) -> RateId {
        if let Some(i) = Self::find(&self.rates, name) {
            return RateId(i);
        }
        self.rates.push((name.to_string(), RateMeter::new(window)));
        RateId(self.rates.len() - 1)
    }

    /// Register (or look up) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = Self::find(&self.histograms, name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Register (or look up) a time series by name.
    pub fn time_series(&mut self, name: &str) -> SeriesId {
        if let Some(i) = Self::find(&self.series, name) {
            return SeriesId(i);
        }
        self.series.push((name.to_string(), TimeSeries::new()));
        SeriesId(self.series.len() - 1)
    }

    /// The counter behind a handle.
    pub fn counter_mut(&mut self, id: CounterId) -> &mut Counter {
        &mut self.counters[id.0].1
    }

    /// The rate meter behind a handle.
    pub fn rate_mut(&mut self, id: RateId) -> &mut RateMeter {
        &mut self.rates[id.0].1
    }

    /// The histogram behind a handle.
    pub fn histogram_mut(&mut self, id: HistogramId) -> &mut Histogram {
        &mut self.histograms[id.0].1
    }

    /// The series behind a handle.
    pub fn series_mut(&mut self, id: SeriesId) -> &mut TimeSeries {
        &mut self.series[id.0].1
    }

    /// Register-or-get a counter and add `n` to it — the idiom for
    /// snapshot-time population from an existing stats struct.
    pub fn add(&mut self, name: &str, n: u64) {
        let id = self.counter(name);
        self.counter_mut(id).add(n);
    }

    /// Register-or-get a series and push one sample.
    pub fn sample(&mut self, name: &str, now: SimTime, value: f64) {
        let id = self.time_series(name);
        self.series_mut(id).push(now, value);
    }

    /// Flatten every instrument into a sorted, deterministic snapshot.
    ///
    /// Counters export their value; rate meters their lifetime total;
    /// histograms expand to `.count` / `.mean` / `.p50` / `.p99` / `.max`;
    /// series to `.samples` / `.mean` / `.last`. Entries are sorted by name
    /// so the snapshot is byte-stable regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, f64)> = Vec::new();
        for (name, c) in &self.counters {
            entries.push((name.clone(), c.get() as f64));
        }
        for (name, r) in &self.rates {
            entries.push((format!("{name}.total"), r.total() as f64));
        }
        for (name, h) in &self.histograms {
            entries.push((format!("{name}.count"), h.count() as f64));
            if h.count() > 0 {
                entries.push((format!("{name}.mean"), h.mean()));
                entries.push((format!("{name}.p50"), h.quantile(0.5)));
                entries.push((format!("{name}.p99"), h.quantile(0.99)));
                entries.push((format!("{name}.max"), h.max()));
            }
        }
        for (name, s) in &self.series {
            entries.push((format!("{name}.samples"), s.len() as f64));
            if !s.is_empty() {
                entries.push((format!("{name}.mean"), s.mean_value()));
                entries.push((format!("{name}.last"), s.points()[s.len() - 1].1));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }

    /// The registered time series, for full-resolution export.
    pub fn all_series(&self) -> &[(String, TimeSeries)] {
        &self.series
    }
}

/// A flattened, name-sorted view of a [`MetricsRegistry`].
///
/// Values are `f64` (counters convert exactly below 2^53). The snapshot is
/// deterministic: same instruments, same values → byte-identical rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// Look up a value by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-event-type wall-clock dispatch-cost profiler.
///
/// Wraps the composition root's dispatch match: the caller stamps
/// `std::time::Instant` around each event and feeds the elapsed nanoseconds
/// here, keyed by a dense event-kind index. Wall-clock means the output is
/// machine-dependent — it exists for `bench hotpath` only and is excluded
/// from golden reports.
#[derive(Debug, Clone)]
pub struct DispatchProfiler {
    names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

/// One row of a [`DispatchProfiler`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Event-kind name.
    pub name: &'static str,
    /// Number of dispatches observed.
    pub count: u64,
    /// Mean cost in nanoseconds.
    pub mean_ns: f64,
    /// Median cost in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile cost in nanoseconds.
    pub p99_ns: f64,
    /// Worst observed cost in nanoseconds.
    pub max_ns: f64,
    /// Total time in this event kind, nanoseconds.
    pub total_ns: f64,
}

impl DispatchProfiler {
    /// A profiler with one histogram per event-kind name.
    pub fn new(names: Vec<&'static str>) -> Self {
        let hists = names.iter().map(|_| Histogram::new()).collect();
        DispatchProfiler { names, hists }
    }

    /// Record one dispatch of kind `kind` costing `nanos` wall-clock ns.
    #[inline]
    pub fn record(&mut self, kind: usize, nanos: f64) {
        self.hists[kind].record(nanos);
    }

    /// Per-kind summary rows, sorted by descending total time.
    pub fn entries(&self) -> Vec<ProfileEntry> {
        let mut out: Vec<ProfileEntry> = self
            .names
            .iter()
            .zip(&self.hists)
            .filter(|(_, h)| h.count() > 0)
            .map(|(&name, h)| ProfileEntry {
                name,
                count: h.count(),
                mean_ns: h.mean(),
                p50_ns: h.quantile(0.5),
                p99_ns: h.quantile(0.99),
                max_ns: h.max(),
                total_ns: h.sum(),
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.partial_cmp(&a.total_ns).unwrap());
        out
    }
}

/// Per-lane wall-clock profile of the sharded lockstep executor.
///
/// The same contract as [`DispatchProfiler`]: wall-clock, observability
/// only, never part of a golden report. The shard driver feeds it one
/// `record_epoch` call per epoch with each lane's busy nanoseconds; the
/// epoch's wall span is the slowest lane (the barrier waits for it), so
/// per-lane stall is `span - busy` and the slowest lane is the epoch's
/// critical lane.
#[derive(Debug, Clone)]
pub struct EpochProfiler {
    busy_ns: Vec<f64>,
    stall_ns: Vec<f64>,
    util: Vec<Histogram>,
    critical: Vec<u64>,
    epochs: u64,
    span: Histogram,
    barrier_ns: f64,
    total_ns: f64,
}

/// One lane row of an [`EpochProfiler`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneProfileEntry {
    /// Lane (shard) index; lane 0 is the hub.
    pub lane: usize,
    /// Total busy wall-clock ns across all epochs.
    pub busy_ns: f64,
    /// Total barrier-stall wall-clock ns (epoch span minus busy).
    pub stall_ns: f64,
    /// Lifetime utilization: `busy / (busy + stall)`.
    pub utilization: f64,
    /// Median per-epoch utilization.
    pub util_p50: f64,
    /// 99th-percentile per-epoch utilization.
    pub util_p99: f64,
    /// Epochs in which this lane was the slowest (bounded the barrier).
    pub critical_epochs: u64,
}

impl EpochProfiler {
    /// A profiler for `lanes` lockstep lanes.
    pub fn new(lanes: usize) -> Self {
        EpochProfiler {
            busy_ns: vec![0.0; lanes],
            stall_ns: vec![0.0; lanes],
            util: (0..lanes).map(|_| Histogram::new()).collect(),
            critical: vec![0; lanes],
            epochs: 0,
            span: Histogram::new(),
            barrier_ns: 0.0,
            total_ns: 0.0,
        }
    }

    /// Record one completed epoch from each lane's busy wall-clock ns.
    pub fn record_epoch(&mut self, busy_ns: &[f64]) {
        debug_assert_eq!(busy_ns.len(), self.busy_ns.len());
        let span = busy_ns.iter().cloned().fold(0.0_f64, f64::max);
        let mut critical = 0;
        for (lane, &busy) in busy_ns.iter().enumerate() {
            self.busy_ns[lane] += busy;
            self.stall_ns[lane] += span - busy;
            if span > 0.0 {
                self.util[lane].record(busy / span);
            }
            if busy > busy_ns[critical] {
                critical = lane;
            }
        }
        self.critical[critical] += 1;
        self.epochs += 1;
        self.span.record(span);
    }

    /// Attach whole-run wall totals measured outside the per-epoch loop:
    /// driver-side barrier time and the full lockstep wall.
    pub fn set_walls(&mut self, barrier_ns: f64, total_ns: f64) {
        self.barrier_ns = barrier_ns;
        self.total_ns = total_ns;
    }

    /// Number of lanes profiled.
    pub fn lanes(&self) -> usize {
        self.busy_ns.len()
    }

    /// Epochs recorded.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total driver-side barrier wall-clock ns (set via `set_walls`).
    pub fn barrier_ns(&self) -> f64 {
        self.barrier_ns
    }

    /// Total lockstep wall-clock ns (set via `set_walls`).
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// Per-epoch span (slowest-lane busy time) distribution.
    pub fn span_hist(&self) -> &Histogram {
        &self.span
    }

    /// Per-lane summary rows, in lane order.
    pub fn lane_rows(&self) -> Vec<LaneProfileEntry> {
        (0..self.busy_ns.len())
            .map(|lane| {
                let busy = self.busy_ns[lane];
                let stall = self.stall_ns[lane];
                let denom = busy + stall;
                LaneProfileEntry {
                    lane,
                    busy_ns: busy,
                    stall_ns: stall,
                    utilization: if denom > 0.0 { busy / denom } else { 0.0 },
                    util_p50: self.util[lane].quantile(0.5),
                    util_p99: self.util[lane].quantile(0.99),
                    critical_epochs: self.critical[lane],
                }
            })
            .collect()
    }

    /// Mean lifetime utilization across all lanes.
    pub fn mean_utilization(&self) -> f64 {
        let rows = self.lane_rows();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.utilization).sum::<f64>() / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_deduplicated_by_name() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("app.packet_ins");
        let b = reg.counter("app.packet_ins");
        assert_eq!(a, b);
        reg.counter_mut(a).add(3);
        reg.counter_mut(b).incr();
        assert_eq!(reg.snapshot().get("app.packet_ins"), Some(4.0));
    }

    #[test]
    fn snapshot_is_sorted_and_registration_order_independent() {
        let mut a = MetricsRegistry::new();
        a.add("zeta", 1);
        a.add("alpha", 2);
        a.sample("mid.series", SimTime::from_secs(1), 5.0);

        let mut b = MetricsRegistry::new();
        b.sample("mid.series", SimTime::from_secs(1), 5.0);
        b.add("alpha", 2);
        b.add("zeta", 1);

        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa, sb);
        let names: Vec<&str> = sa.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_expands_histograms_and_series() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [10.0, 20.0, 30.0] {
            reg.histogram_mut(h).record(v);
        }
        let s = reg.time_series("queue");
        reg.series_mut(s).push(SimTime::from_secs(1), 4.0);
        reg.series_mut(s).push(SimTime::from_secs(2), 8.0);
        let snap = reg.snapshot();
        assert_eq!(snap.get("lat.count"), Some(3.0));
        assert_eq!(snap.get("lat.mean"), Some(20.0));
        assert_eq!(snap.get("queue.samples"), Some(2.0));
        assert_eq!(snap.get("queue.last"), Some(8.0));
        assert_eq!(snap.get("queue.mean"), Some(6.0));
    }

    #[test]
    fn empty_histogram_exports_count_only() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("empty");
        let snap = reg.snapshot();
        assert_eq!(snap.get("empty.count"), Some(0.0));
        assert_eq!(snap.get("empty.mean"), None);
    }

    #[test]
    fn epoch_profiler_attributes_stall_and_critical_lanes() {
        let mut p = EpochProfiler::new(3);
        // Lane 2 bounds the first two epochs, lane 0 the third.
        p.record_epoch(&[100.0, 50.0, 200.0]);
        p.record_epoch(&[100.0, 50.0, 200.0]);
        p.record_epoch(&[300.0, 50.0, 200.0]);
        assert_eq!(p.epochs(), 3);
        let rows = p.lane_rows();
        assert_eq!(rows.len(), 3);
        // Lane 2: busy 600, stall (200-200)+(200-200)+(300-200)=100.
        assert_eq!(rows[2].busy_ns, 600.0);
        assert_eq!(rows[2].stall_ns, 100.0);
        assert_eq!(rows[2].critical_epochs, 2);
        assert_eq!(rows[0].critical_epochs, 1);
        // Lane 1 is mostly idle: busy 150 of 700 elapsed.
        assert!(rows[1].utilization < 0.25);
        assert!(rows[2].utilization > 0.85);
        assert!(p.mean_utilization() > 0.0 && p.mean_utilization() < 1.0);
    }

    #[test]
    fn epoch_profiler_walls_are_attached_not_derived() {
        let mut p = EpochProfiler::new(2);
        p.record_epoch(&[10.0, 20.0]);
        assert_eq!(p.barrier_ns(), 0.0);
        p.set_walls(5.0, 40.0);
        assert_eq!(p.barrier_ns(), 5.0);
        assert_eq!(p.total_ns(), 40.0);
        assert_eq!(p.span_hist().count(), 1);
    }

    #[test]
    fn profiler_reports_by_descending_total() {
        let mut p = DispatchProfiler::new(vec!["arrive", "tick", "idle"]);
        for _ in 0..100 {
            p.record(0, 50.0);
        }
        p.record(1, 10_000.0);
        let rows = p.entries();
        assert_eq!(rows.len(), 2); // "idle" never fired.
        assert_eq!(rows[0].name, "tick");
        assert_eq!(rows[1].name, "arrive");
        assert_eq!(rows[1].count, 100);
    }
}
