//! Flight-recorder tracing: a deterministic record of *why* a run produced
//! its numbers.
//!
//! The final [`Report`](../../scotch/struct.Report.html) aggregates say *what*
//! happened; this module records the individual control-plane decisions that
//! produced those aggregates — overlay activations, queue-threshold
//! crossings, migrations, group rebalances — into a bounded ring buffer.
//!
//! Determinism rules (DESIGN.md §10):
//!
//! * Records carry [`SimTime`] only, never wall-clock, so a trace is a pure
//!   function of `(scenario, seed)` and bit-reproducible across runs and
//!   machines.
//! * Event payloads are compact `Copy` structs of raw integer ids — the sim
//!   crate sits below `scotch-net`, so node ids appear as the raw `u32`
//!   behind `NodeId`.
//! * When disabled (the default), [`TraceRecorder::record`] is a single
//!   predictable branch — cheap enough to leave call sites in the hot path.

use crate::time::SimTime;

/// Verbosity of a trace category.
///
/// Levels are ordered: a recorder configured at [`TraceLevel::Brief`] keeps
/// `Brief` events and drops `Verbose` ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing in this category.
    #[default]
    Off = 0,
    /// Record state transitions only (activations, migrations, failovers).
    Brief = 1,
    /// Additionally record per-flow / per-rule events (admissions, installs).
    Verbose = 2,
}

/// Category of a trace event, used for per-category level filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Overlay activation / withdrawal state machine.
    Overlay,
    /// OFA queue threshold crossings and sheds.
    Queue,
    /// Per-flow admission, migration, drop decisions.
    Flow,
    /// Flow-table rule installs.
    Rule,
    /// Packet-In arrivals at the controller.
    PacketIn,
    /// Group-table builds and rebalances.
    Group,
    /// vSwitch liveness: failures, joins, recoveries, failovers.
    Health,
    /// Injected faults (chaos harness) and their restorations.
    Fault,
    /// Sharded-execution epochs and inter-shard handoffs (recorded by the
    /// lockstep driver on the hub lane; sequential runs never emit these).
    Shard,
    /// Controller-cluster mastership: replica crashes, recoveries,
    /// coordination-channel partitions, and per-switch mastership handoffs.
    Cluster,
}

/// Number of trace categories (size of the per-category level table).
pub const TRACE_CATEGORIES: usize = 10;

impl TraceCategory {
    /// All categories, in a fixed order matching [`TraceCategory::index`].
    pub const ALL: [TraceCategory; TRACE_CATEGORIES] = [
        TraceCategory::Overlay,
        TraceCategory::Queue,
        TraceCategory::Flow,
        TraceCategory::Rule,
        TraceCategory::PacketIn,
        TraceCategory::Group,
        TraceCategory::Health,
        TraceCategory::Fault,
        TraceCategory::Shard,
        TraceCategory::Cluster,
    ];

    /// Dense index into the per-category level table.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (used by the CLI `--filter` flag and JSONL).
    pub const fn name(self) -> &'static str {
        match self {
            TraceCategory::Overlay => "overlay",
            TraceCategory::Queue => "queue",
            TraceCategory::Flow => "flow",
            TraceCategory::Rule => "rule",
            TraceCategory::PacketIn => "packet_in",
            TraceCategory::Group => "group",
            TraceCategory::Health => "health",
            TraceCategory::Fault => "fault",
            TraceCategory::Shard => "shard",
            TraceCategory::Cluster => "cluster",
        }
    }

    /// Parse a category from its [`name`](TraceCategory::name).
    pub fn from_name(s: &str) -> Option<TraceCategory> {
        TraceCategory::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// Why a group table was (re)built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceReason {
    /// Initial build when the overlay activates for a switch.
    Activation,
    /// A member vSwitch died; its bucket was replaced or disabled.
    Failover,
    /// A new vSwitch joined the pool and was added to the group.
    Join,
}

impl RebalanceReason {
    /// Stable lowercase name for JSONL export.
    pub const fn name(self) -> &'static str {
        match self {
            RebalanceReason::Activation => "activation",
            RebalanceReason::Failover => "failover",
            RebalanceReason::Join => "join",
        }
    }
}

/// A typed, compact trace event.
///
/// Node ids are the raw `u32` behind `scotch-net`'s `NodeId` (this crate
/// sits below the network layer). Payloads are small and `Copy` so recording
/// is a handful of register moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The controller activated the vSwitch overlay for a switch (§5.2).
    OverlayActivated {
        /// Switch whose Packet-In load crossed the activation threshold.
        switch: u32,
        /// Number of vSwitch buckets in the load-balancing group.
        buckets: u32,
        /// True when triggered by TCAM TableFull pressure rather than rate.
        tcam_triggered: bool,
    },
    /// The controller withdrew the overlay for a switch (§5.5).
    OverlayWithdrawn {
        /// Switch whose load fell below the withdrawal threshold.
        switch: u32,
        /// Overlay flows pinned in place during the withdrawal.
        pinned: u32,
    },
    /// A switch's OFA queue crossed the overlay or drop threshold.
    QueueThresholdCrossed {
        /// Switch whose admission queue crossed the threshold.
        switch: u32,
        /// Queue backlog at the crossing.
        backlog: u32,
        /// True when the drop threshold was crossed (flows are discarded);
        /// false for the overlay threshold (flows shed to the overlay).
        dropping: bool,
    },
    /// A flow was admitted (rules installed, first packet released).
    FlowAdmitted {
        /// Switch the flow entered at.
        switch: u32,
        /// True when routed over the vSwitch overlay.
        via_overlay: bool,
    },
    /// A flow's packets were dropped at admission (queue full).
    FlowDropped {
        /// Switch the flow entered at.
        switch: u32,
    },
    /// An elephant flow was migrated from the overlay to the physical
    /// network (§5.3), or the migration was deferred.
    FlowMigrated {
        /// First-hop switch of the migrated flow.
        switch: u32,
        /// True when the migration was deferred (budget exhausted).
        deferred: bool,
    },
    /// The controller sent a FlowMod Add to a switch.
    RuleInstalled {
        /// Target switch.
        switch: u32,
        /// Target table id.
        table: u32,
        /// Rule priority.
        priority: u32,
    },
    /// A Packet-In reached the controller.
    PacketInEmitted {
        /// Origin switch the Packet-In is attributed to (§5.4).
        switch: u32,
        /// True when it arrived through a vSwitch tunnel.
        via_overlay: bool,
        /// True when a copy of this flow's Packet-In was already seen.
        duplicate: bool,
    },
    /// A switch's load-balancing group was built or rebalanced.
    GroupRebalanced {
        /// Switch owning the group.
        switch: u32,
        /// Live buckets after the operation.
        buckets: u32,
        /// What prompted the rebalance.
        reason: RebalanceReason,
    },
    /// Heartbeat monitoring declared a vSwitch dead and repaired groups.
    FailoverExecuted {
        /// The vSwitch declared dead.
        dead: u32,
        /// Replacement vSwitch id, or `u32::MAX` when none was available
        /// (the bucket was disabled instead).
        replacement: u32,
    },
    /// A vSwitch joined the overlay pool.
    VSwitchJoined {
        /// The joining vSwitch.
        node: u32,
    },
    /// A failed vSwitch recovered and rejoined.
    VSwitchRecovered {
        /// The recovering vSwitch.
        node: u32,
    },
    /// A fault from a [`FaultPlan`](crate::fault::FaultPlan) was injected.
    FaultInjected {
        /// Fault-kind index into [`FAULT_KIND_NAMES`](crate::fault::FAULT_KIND_NAMES).
        kind: u32,
        /// Resolved concrete target (node id, directed link id, or
        /// `u32::MAX` for untargeted faults like a controller stall).
        target: u32,
    },
    /// A bounded fault's effect was restored (link back up, slowdown
    /// lifted, stall ended, vSwitch restarted).
    FaultCleared {
        /// Fault-kind index into [`FAULT_KIND_NAMES`](crate::fault::FAULT_KIND_NAMES).
        kind: u32,
        /// Resolved concrete target, `u32::MAX` when untargeted.
        target: u32,
    },
    /// A control-channel message was perturbed by an active fault window.
    CtrlMsgPerturbed {
        /// Perturbation: 0 = dropped rx, 1 = dropped tx, 2 = duplicated,
        /// 3 = delayed (reorder).
        kind: u32,
    },
    /// The lockstep driver opened a new execution epoch: every lane may run
    /// up to `width` ns of sim-time before the next barrier.
    EpochOpened {
        /// Zero-based epoch index.
        epoch: u32,
        /// Granted epoch width in sim-time ns (lookahead, clamped by the
        /// next central-timeline entry and the horizon).
        width: u64,
    },
    /// A completed epoch's event total, recorded at the closing barrier.
    EpochClosed {
        /// Zero-based epoch index.
        epoch: u32,
        /// Events processed across all lanes during the epoch.
        events: u64,
    },
    /// Events crossed a shard boundary at a barrier (one record per
    /// `(src, dst)` pair with traffic).
    ShardHandoff {
        /// Sending shard.
        src: u32,
        /// Receiving shard.
        dst: u32,
        /// Events handed off.
        events: u32,
    },
    /// A controller replica crashed; its switches enter mastership
    /// migration toward their standbys.
    ReplicaCrashed {
        /// The crashed replica index.
        replica: u32,
        /// Switches whose mastership must migrate off the replica.
        switches: u32,
    },
    /// A crashed controller replica rejoined the cluster as a standby.
    ReplicaRecovered {
        /// The recovering replica index.
        replica: u32,
    },
    /// The inter-controller coordination channel was partitioned; handoffs
    /// initiated during the window cannot complete until it heals.
    ClusterPartitioned {
        /// Partition window length in sim-time ns.
        duration_ns: u64,
    },
    /// The inter-controller coordination channel healed.
    ClusterHealed {},
    /// One switch's mastership handoff completed: the new master took over
    /// and the switch's pending Packet-Ins were released to it.
    MastershipHandoff {
        /// The switch whose mastership moved.
        switch: u32,
        /// Previous master replica (`u32::MAX` when unknown/orphaned).
        from: u32,
        /// New master replica.
        to: u32,
        /// Pending control messages released to the new master.
        released: u32,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    pub const fn category(self) -> TraceCategory {
        match self {
            TraceEvent::OverlayActivated { .. } | TraceEvent::OverlayWithdrawn { .. } => {
                TraceCategory::Overlay
            }
            TraceEvent::QueueThresholdCrossed { .. } => TraceCategory::Queue,
            TraceEvent::FlowAdmitted { .. }
            | TraceEvent::FlowDropped { .. }
            | TraceEvent::FlowMigrated { .. } => TraceCategory::Flow,
            TraceEvent::RuleInstalled { .. } => TraceCategory::Rule,
            TraceEvent::PacketInEmitted { .. } => TraceCategory::PacketIn,
            TraceEvent::GroupRebalanced { .. } => TraceCategory::Group,
            TraceEvent::FailoverExecuted { .. }
            | TraceEvent::VSwitchJoined { .. }
            | TraceEvent::VSwitchRecovered { .. } => TraceCategory::Health,
            TraceEvent::FaultInjected { .. }
            | TraceEvent::FaultCleared { .. }
            | TraceEvent::CtrlMsgPerturbed { .. } => TraceCategory::Fault,
            TraceEvent::EpochOpened { .. }
            | TraceEvent::EpochClosed { .. }
            | TraceEvent::ShardHandoff { .. } => TraceCategory::Shard,
            TraceEvent::ReplicaCrashed { .. }
            | TraceEvent::ReplicaRecovered { .. }
            | TraceEvent::ClusterPartitioned { .. }
            | TraceEvent::ClusterHealed {}
            | TraceEvent::MastershipHandoff { .. } => TraceCategory::Cluster,
        }
    }

    /// The minimum recorder level at which this event is kept.
    ///
    /// State transitions are `Brief`; per-flow and per-rule events are
    /// `Verbose` (they dominate volume under a flood).
    pub const fn level(self) -> TraceLevel {
        match self {
            TraceEvent::FlowAdmitted { .. }
            | TraceEvent::FlowDropped { .. }
            | TraceEvent::RuleInstalled { .. }
            | TraceEvent::PacketInEmitted { .. }
            | TraceEvent::CtrlMsgPerturbed { .. }
            | TraceEvent::ShardHandoff { .. } => TraceLevel::Verbose,
            _ => TraceLevel::Brief,
        }
    }

    /// Stable snake_case event-kind name for JSONL export and summaries.
    pub const fn kind_name(self) -> &'static str {
        match self {
            TraceEvent::OverlayActivated { .. } => "overlay_activated",
            TraceEvent::OverlayWithdrawn { .. } => "overlay_withdrawn",
            TraceEvent::QueueThresholdCrossed { .. } => "queue_threshold_crossed",
            TraceEvent::FlowAdmitted { .. } => "flow_admitted",
            TraceEvent::FlowDropped { .. } => "flow_dropped",
            TraceEvent::FlowMigrated { .. } => "flow_migrated",
            TraceEvent::RuleInstalled { .. } => "rule_installed",
            TraceEvent::PacketInEmitted { .. } => "packet_in_emitted",
            TraceEvent::GroupRebalanced { .. } => "group_rebalanced",
            TraceEvent::FailoverExecuted { .. } => "failover_executed",
            TraceEvent::VSwitchJoined { .. } => "vswitch_joined",
            TraceEvent::VSwitchRecovered { .. } => "vswitch_recovered",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::FaultCleared { .. } => "fault_cleared",
            TraceEvent::CtrlMsgPerturbed { .. } => "ctrl_msg_perturbed",
            TraceEvent::EpochOpened { .. } => "epoch_opened",
            TraceEvent::EpochClosed { .. } => "epoch_closed",
            TraceEvent::ShardHandoff { .. } => "shard_handoff",
            TraceEvent::ReplicaCrashed { .. } => "replica_crashed",
            TraceEvent::ReplicaRecovered { .. } => "replica_recovered",
            TraceEvent::ClusterPartitioned { .. } => "cluster_partitioned",
            TraceEvent::ClusterHealed {} => "cluster_healed",
            TraceEvent::MastershipHandoff { .. } => "mastership_handoff",
        }
    }

    /// The event payload as `(field_name, value)` pairs, in declaration
    /// order. Booleans render as 0/1; enum fields as their dense index.
    /// This keeps JSONL export and summaries free of per-variant code.
    pub fn fields(self) -> Vec<(&'static str, u64)> {
        match self {
            TraceEvent::OverlayActivated {
                switch,
                buckets,
                tcam_triggered,
            } => vec![
                ("switch", switch as u64),
                ("buckets", buckets as u64),
                ("tcam_triggered", tcam_triggered as u64),
            ],
            TraceEvent::OverlayWithdrawn { switch, pinned } => {
                vec![("switch", switch as u64), ("pinned", pinned as u64)]
            }
            TraceEvent::QueueThresholdCrossed {
                switch,
                backlog,
                dropping,
            } => vec![
                ("switch", switch as u64),
                ("backlog", backlog as u64),
                ("dropping", dropping as u64),
            ],
            TraceEvent::FlowAdmitted {
                switch,
                via_overlay,
            } => vec![
                ("switch", switch as u64),
                ("via_overlay", via_overlay as u64),
            ],
            TraceEvent::FlowDropped { switch } => vec![("switch", switch as u64)],
            TraceEvent::FlowMigrated { switch, deferred } => {
                vec![("switch", switch as u64), ("deferred", deferred as u64)]
            }
            TraceEvent::RuleInstalled {
                switch,
                table,
                priority,
            } => vec![
                ("switch", switch as u64),
                ("table", table as u64),
                ("priority", priority as u64),
            ],
            TraceEvent::PacketInEmitted {
                switch,
                via_overlay,
                duplicate,
            } => vec![
                ("switch", switch as u64),
                ("via_overlay", via_overlay as u64),
                ("duplicate", duplicate as u64),
            ],
            TraceEvent::GroupRebalanced {
                switch,
                buckets,
                reason,
            } => vec![
                ("switch", switch as u64),
                ("buckets", buckets as u64),
                ("reason", reason as u64),
            ],
            TraceEvent::FailoverExecuted { dead, replacement } => {
                vec![("dead", dead as u64), ("replacement", replacement as u64)]
            }
            TraceEvent::VSwitchJoined { node } => vec![("node", node as u64)],
            TraceEvent::VSwitchRecovered { node } => vec![("node", node as u64)],
            TraceEvent::FaultInjected { kind, target } => {
                vec![("kind", kind as u64), ("target", target as u64)]
            }
            TraceEvent::FaultCleared { kind, target } => {
                vec![("kind", kind as u64), ("target", target as u64)]
            }
            TraceEvent::CtrlMsgPerturbed { kind } => vec![("kind", kind as u64)],
            TraceEvent::EpochOpened { epoch, width } => {
                vec![("epoch", epoch as u64), ("width", width)]
            }
            TraceEvent::EpochClosed { epoch, events } => {
                vec![("epoch", epoch as u64), ("events", events)]
            }
            TraceEvent::ShardHandoff { src, dst, events } => vec![
                ("src", src as u64),
                ("dst", dst as u64),
                ("events", events as u64),
            ],
            TraceEvent::ReplicaCrashed { replica, switches } => {
                vec![("replica", replica as u64), ("switches", switches as u64)]
            }
            TraceEvent::ReplicaRecovered { replica } => vec![("replica", replica as u64)],
            TraceEvent::ClusterPartitioned { duration_ns } => {
                vec![("duration_ns", duration_ns)]
            }
            TraceEvent::ClusterHealed {} => vec![],
            TraceEvent::MastershipHandoff {
                switch,
                from,
                to,
                released,
            } => vec![
                ("switch", switch as u64),
                ("from", from as u64),
                ("to", to as u64),
                ("released", released as u64),
            ],
        }
    }
}

/// One recorded trace entry: global sequence number, sim-time, payload.
///
/// `seq` counts every event *accepted* by the recorder (including ones later
/// overwritten by ring wraparound), so gaps in a dumped trace reveal exactly
/// how much history the ring evicted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Global sequence number, starting at 0.
    pub seq: u64,
    /// Simulation time of the event.
    pub at: SimTime,
    /// The event payload.
    pub event: TraceEvent,
}

/// Configuration for a [`TraceRecorder`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity in records. Oldest records are overwritten once
    /// the ring is full.
    pub capacity: usize,
    /// Per-category verbosity, indexed by [`TraceCategory::index`].
    pub levels: [TraceLevel; TRACE_CATEGORIES],
}

impl Default for TraceConfig {
    /// 64 Ki records, every category at [`TraceLevel::Brief`] — the
    /// "enabled-at-default-level" configuration benchmarked by CI.
    fn default() -> Self {
        TraceConfig {
            capacity: 65_536,
            levels: [TraceLevel::Brief; TRACE_CATEGORIES],
        }
    }
}

impl TraceConfig {
    /// Every category at [`TraceLevel::Verbose`] (per-flow events included).
    pub fn verbose() -> Self {
        TraceConfig {
            levels: [TraceLevel::Verbose; TRACE_CATEGORIES],
            ..TraceConfig::default()
        }
    }

    /// Set one category's level.
    pub fn with_level(mut self, cat: TraceCategory, level: TraceLevel) -> Self {
        self.levels[cat.index()] = level;
        self
    }

    /// Set the ring-buffer capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        self.capacity = capacity;
        self
    }
}

/// Bounded ring-buffer recorder for [`TraceEvent`]s.
///
/// The disabled recorder ([`TraceRecorder::disabled`], the default) costs a
/// single well-predicted branch per [`record`](TraceRecorder::record) call
/// and allocates nothing, so call sites stay in the hot path unconditionally.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    enabled: bool,
    levels: [TraceLevel; TRACE_CATEGORIES],
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the next slot to write (wraps at `capacity`).
    head: usize,
    /// Sequence number of the next accepted record.
    next_seq: u64,
}

impl TraceRecorder {
    /// A recorder that keeps nothing (the default for every run).
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// An enabled recorder with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        assert!(config.capacity > 0, "trace capacity must be positive");
        TraceRecorder {
            enabled: true,
            levels: config.levels,
            buf: Vec::with_capacity(config.capacity.min(4096)),
            capacity: config.capacity,
            head: 0,
            next_seq: 0,
        }
    }

    /// True when this recorder keeps any events at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True when an event of `cat` at `level` would currently be kept.
    #[inline]
    pub fn wants(&self, cat: TraceCategory, level: TraceLevel) -> bool {
        self.enabled && self.levels[cat.index()] >= level
    }

    /// Record `event` at sim-time `now`, subject to category filtering.
    ///
    /// On a disabled recorder this is one branch and an immediate return.
    #[inline]
    pub fn record(&mut self, now: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.record_slow(now, event);
    }

    #[inline(never)]
    fn record_slow(&mut self, now: SimTime, event: TraceEvent) {
        if self.levels[event.category().index()] < event.level() {
            return;
        }
        let rec = TraceRecord {
            seq: self.next_seq,
            at: now,
            event,
        };
        self.next_seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
            self.head = self.buf.len() % self.capacity;
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records accepted over the run (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// The retained records in chronological (sequence) order.
    pub fn records(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// Consume the recorder, returning `(records, total_recorded)`.
    pub fn into_records(self) -> (Vec<TraceRecord>, u64) {
        let total = self.next_seq;
        (self.records(), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(switch: u32) -> TraceEvent {
        TraceEvent::OverlayActivated {
            switch,
            buckets: 4,
            tcam_triggered: false,
        }
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let mut r = TraceRecorder::disabled();
        r.record(SimTime::from_secs(1), ev(1));
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
    }

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let mut r = TraceRecorder::new(TraceConfig::default());
        for i in 0..5 {
            r.record(SimTime::from_millis(i * 10), ev(i as u32));
        }
        let recs = r.records();
        assert_eq!(recs.len(), 5);
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.at, SimTime::from_millis(i as u64 * 10));
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let mut r = TraceRecorder::new(TraceConfig::default().with_capacity(4));
        for i in 0..10 {
            r.record(SimTime::from_millis(i), ev(i as u32));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let recs = r.records();
        // The newest four, still in sequence order.
        let seqs: Vec<u64> = recs.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn wraparound_is_stable_over_many_laps() {
        let mut r = TraceRecorder::new(TraceConfig::default().with_capacity(3));
        for i in 0..3 * 7 + 2 {
            r.record(SimTime::from_millis(i), ev(i as u32));
        }
        let seqs: Vec<u64> = r.records().iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![20, 21, 22]);
    }

    #[test]
    fn level_filtering_drops_verbose_events_at_brief() {
        let mut r = TraceRecorder::new(TraceConfig::default());
        // FlowAdmitted is Verbose; default config is Brief everywhere.
        r.record(
            SimTime::from_secs(1),
            TraceEvent::FlowAdmitted {
                switch: 1,
                via_overlay: false,
            },
        );
        assert!(r.is_empty());
        r.record(SimTime::from_secs(1), ev(1)); // Brief event is kept.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn per_category_levels_are_independent() {
        let cfg = TraceConfig::default()
            .with_level(TraceCategory::Flow, TraceLevel::Verbose)
            .with_level(TraceCategory::Overlay, TraceLevel::Off);
        let mut r = TraceRecorder::new(cfg);
        r.record(SimTime::ZERO, ev(1)); // Overlay: off → dropped.
        r.record(
            SimTime::ZERO,
            TraceEvent::FlowAdmitted {
                switch: 2,
                via_overlay: true,
            },
        ); // Flow: verbose → kept.
        assert_eq!(r.len(), 1);
        assert_eq!(r.records()[0].event.category(), TraceCategory::Flow);
    }

    #[test]
    fn wants_reflects_enabled_and_level() {
        let r = TraceRecorder::disabled();
        assert!(!r.wants(TraceCategory::Overlay, TraceLevel::Brief));
        let r = TraceRecorder::new(TraceConfig::default());
        assert!(r.wants(TraceCategory::Overlay, TraceLevel::Brief));
        assert!(!r.wants(TraceCategory::Flow, TraceLevel::Verbose));
    }

    #[test]
    fn category_names_round_trip() {
        for cat in TraceCategory::ALL {
            assert_eq!(TraceCategory::from_name(cat.name()), Some(cat));
        }
        assert_eq!(TraceCategory::from_name("bogus"), None);
    }

    #[test]
    fn fields_match_variant_payload() {
        let f = TraceEvent::RuleInstalled {
            switch: 3,
            table: 1,
            priority: 50,
        }
        .fields();
        assert_eq!(f, vec![("switch", 3), ("table", 1), ("priority", 50)]);
    }
}
