//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since the start of the simulation.
//! Nanosecond resolution is fine enough to order back-to-back packets on a
//! 10 Gbps link (a 64-byte frame takes ~51 ns) while still representing
//! ~584 years of simulated time without overflow.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A duration of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    pub const fn from_micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }

    /// A duration of `n` whole seconds.
    pub const fn from_secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }

    /// A duration of `s` seconds, from a float. Negative and non-finite
    /// inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of simulated time: nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The instant `n` nanoseconds after the epoch.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// The instant `n` milliseconds after the epoch.
    pub const fn from_millis(n: u64) -> Self {
        SimTime(n * 1_000_000)
    }

    /// The instant `n` seconds after the epoch.
    pub const fn from_secs(n: u64) -> Self {
        SimTime(n * 1_000_000_000)
    }

    /// The instant `s` seconds after the epoch, from a float.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).0)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since `earlier`, saturating at zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(1);
        let t2 = t + SimDuration::from_millis(250);
        assert_eq!(t2.as_nanos(), 1_250_000_000);
        assert_eq!(t2 - t, SimDuration::from_millis(250));
        // Saturating in the wrong direction.
        assert_eq!(t - t2, SimDuration::ZERO);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(2));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn time_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
