//! Declarative, seed-deterministic fault plans.
//!
//! A [`FaultPlan`] is a schedule of typed fault events that a composition
//! root (the `scotch` crate's `Simulation`) injects through its ordinary
//! event queue. Because injection rides the same deterministic queue as
//! every other event, any (scenario, seed, plan) triple replays
//! bit-identically.
//!
//! Targets are abstract `u32` indices, resolved *at injection time* modulo
//! the set of live candidates (mesh vSwitches, links, switches). This keeps
//! randomly generated plans robust: any index is valid against any topology,
//! and shrinking an unrelated event never invalidates the rest of the plan.
//!
//! Plans have a stable line-based text form (see [`FaultPlan::render`])
//! so they can be pinned as golden fixtures and passed on the command line.

use crate::time::{SimDuration, SimTime};

/// Number of distinct fault kinds.
pub const FAULT_KIND_COUNT: usize = 11;

/// Canonical names for each fault kind, indexed by [`FaultKind::index`].
pub const FAULT_KIND_NAMES: [&str; FAULT_KIND_COUNT] = [
    "vswitch_crash",
    "link_down",
    "link_flap",
    "link_degrade",
    "ctrl_loss",
    "ctrl_dup",
    "ctrl_reorder",
    "ofa_slowdown",
    "controller_stall",
    "replica_crash",
    "ctrl_partition",
];

/// A typed fault to inject at some instant.
///
/// Durations bound the fault's effect; the injector schedules the matching
/// restore event itself. Probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash a live mesh vSwitch (index modulo the live mesh set), with an
    /// optional restart after the given delay.
    VSwitchCrash {
        /// Abstract target index (resolved modulo live mesh vSwitches).
        target: u32,
        /// Delay until the vSwitch rejoins; `None` means it stays dead.
        restart_after: Option<SimDuration>,
    },
    /// Take one directed link down for `duration`.
    LinkDown {
        /// Abstract target index (resolved modulo directed link count).
        target: u32,
        /// How long the link stays down.
        duration: SimDuration,
    },
    /// Flap one directed link: `cycles` down/up pairs, each half-cycle
    /// lasting `period`.
    LinkFlap {
        /// Abstract target index (resolved modulo directed link count).
        target: u32,
        /// Number of down/up cycles.
        cycles: u32,
        /// Length of each half-cycle (down period == up period).
        period: SimDuration,
    },
    /// Add `extra_latency` to every transmission on one directed link for
    /// `duration`.
    LinkDegrade {
        /// Abstract target index (resolved modulo directed link count).
        target: u32,
        /// Additional one-way latency while degraded.
        extra_latency: SimDuration,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// Drop each control-channel message (both directions) with probability
    /// `p` for `duration`.
    CtrlLoss {
        /// Per-message drop probability.
        p: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// Duplicate each switch-to-controller message with probability `p`
    /// for `duration`.
    CtrlDup {
        /// Per-message duplication probability.
        p: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// Delay each control-channel message by a uniform extra latency in
    /// `[0, jitter]` with probability `p` for `duration`, reordering
    /// messages relative to each other.
    CtrlReorder {
        /// Per-message perturbation probability.
        p: f64,
        /// Maximum extra delay.
        jitter: SimDuration,
        /// Window length.
        duration: SimDuration,
    },
    /// Multiply one switch's OFA service times (Packet-In handling and rule
    /// insertion) by `factor` for `duration`.
    OfaSlowdown {
        /// Abstract target index (resolved modulo switches with an OFA).
        target: u32,
        /// Service-time multiplier (>= 1 slows the agent down).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// Stall the controller completely for `duration`: inbound messages and
    /// periodic ticks are deferred until the stall ends.
    ControllerStall {
        /// Stall window length.
        duration: SimDuration,
    },
    /// Crash one controller replica (index modulo live replicas), migrating
    /// every switch it masters to the first live standby. Only meaningful
    /// when a controller cluster is configured; skipped otherwise.
    ReplicaCrash {
        /// Abstract target index (resolved modulo live replicas).
        target: u32,
        /// Delay until the replica rejoins as a standby; `None` = stays dead.
        restart_after: Option<SimDuration>,
    },
    /// Partition the inter-controller coordination channel for `duration`:
    /// mastership handoffs initiated while partitioned cannot complete until
    /// the partition heals. Only meaningful with a controller cluster.
    CtrlPartition {
        /// Partition window length.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// Index of this kind into [`FAULT_KIND_NAMES`].
    pub fn index(&self) -> usize {
        match self {
            FaultKind::VSwitchCrash { .. } => 0,
            FaultKind::LinkDown { .. } => 1,
            FaultKind::LinkFlap { .. } => 2,
            FaultKind::LinkDegrade { .. } => 3,
            FaultKind::CtrlLoss { .. } => 4,
            FaultKind::CtrlDup { .. } => 5,
            FaultKind::CtrlReorder { .. } => 6,
            FaultKind::OfaSlowdown { .. } => 7,
            FaultKind::ControllerStall { .. } => 8,
            FaultKind::ReplicaCrash { .. } => 9,
            FaultKind::CtrlPartition { .. } => 10,
        }
    }

    /// Canonical name of this kind.
    pub fn name(&self) -> &'static str {
        FAULT_KIND_NAMES[self.index()]
    }
}

/// One scheduled fault: a [`FaultKind`] at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When to inject.
    pub at: SimTime,
    /// What to inject.
    pub kind: FaultKind,
}

/// A schedule of fault events.
///
/// The plan itself is inert data; the `scotch` crate's simulation applies
/// it by scheduling one injection event per entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in schedule order after [`FaultPlan::sort`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Append a fault at `at`.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sort events by injection time, preserving insertion order on ties.
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// Count of events per fault kind, indexed by [`FaultKind::index`].
    pub fn kind_counts(&self) -> [usize; FAULT_KIND_COUNT] {
        let mut counts = [0usize; FAULT_KIND_COUNT];
        for e in &self.events {
            counts[e.kind.index()] += 1;
        }
        counts
    }

    /// Render the plan in its stable line-based text form.
    ///
    /// One event per line: `<at_ns> <kind> key=value ...`. Blank lines and
    /// `#` comments are accepted by [`FaultPlan::parse`]. The rendering is
    /// canonical: `parse(render(p)) == p` for any plan.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let at = e.at.as_nanos();
            match e.kind {
                FaultKind::VSwitchCrash {
                    target,
                    restart_after,
                } => {
                    out.push_str(&format!("{at} vswitch_crash target={target}"));
                    if let Some(d) = restart_after {
                        out.push_str(&format!(" restart_after_ns={}", d.as_nanos()));
                    }
                }
                FaultKind::LinkDown { target, duration } => {
                    out.push_str(&format!(
                        "{at} link_down target={target} duration_ns={}",
                        duration.as_nanos()
                    ));
                }
                FaultKind::LinkFlap {
                    target,
                    cycles,
                    period,
                } => {
                    out.push_str(&format!(
                        "{at} link_flap target={target} cycles={cycles} period_ns={}",
                        period.as_nanos()
                    ));
                }
                FaultKind::LinkDegrade {
                    target,
                    extra_latency,
                    duration,
                } => {
                    out.push_str(&format!(
                        "{at} link_degrade target={target} extra_ns={} duration_ns={}",
                        extra_latency.as_nanos(),
                        duration.as_nanos()
                    ));
                }
                FaultKind::CtrlLoss { p, duration } => {
                    out.push_str(&format!(
                        "{at} ctrl_loss p={p} duration_ns={}",
                        duration.as_nanos()
                    ));
                }
                FaultKind::CtrlDup { p, duration } => {
                    out.push_str(&format!(
                        "{at} ctrl_dup p={p} duration_ns={}",
                        duration.as_nanos()
                    ));
                }
                FaultKind::CtrlReorder {
                    p,
                    jitter,
                    duration,
                } => {
                    out.push_str(&format!(
                        "{at} ctrl_reorder p={p} jitter_ns={} duration_ns={}",
                        jitter.as_nanos(),
                        duration.as_nanos()
                    ));
                }
                FaultKind::OfaSlowdown {
                    target,
                    factor,
                    duration,
                } => {
                    out.push_str(&format!(
                        "{at} ofa_slowdown target={target} factor={factor} duration_ns={}",
                        duration.as_nanos()
                    ));
                }
                FaultKind::ControllerStall { duration } => {
                    out.push_str(&format!(
                        "{at} controller_stall duration_ns={}",
                        duration.as_nanos()
                    ));
                }
                FaultKind::ReplicaCrash {
                    target,
                    restart_after,
                } => {
                    out.push_str(&format!("{at} replica_crash target={target}"));
                    if let Some(d) = restart_after {
                        out.push_str(&format!(" restart_after_ns={}", d.as_nanos()));
                    }
                }
                FaultKind::CtrlPartition { duration } => {
                    out.push_str(&format!(
                        "{at} ctrl_partition duration_ns={}",
                        duration.as_nanos()
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parse the text form produced by [`FaultPlan::render`].
    ///
    /// Blank lines and lines starting with `#` are ignored. Unknown kinds,
    /// missing or malformed fields, and out-of-range probabilities are
    /// errors naming the offending line.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let mut tokens = line.split_whitespace();
            let at_tok = tokens.next().ok_or_else(|| err(lineno, "empty line"))?;
            let at_ns: u64 = at_tok
                .parse()
                .map_err(|_| err(lineno, &format!("bad timestamp `{at_tok}`")))?;
            let at = SimTime::from_nanos(at_ns);
            let kind_tok = tokens
                .next()
                .ok_or_else(|| err(lineno, "missing fault kind"))?;
            let fields = Fields::parse(lineno, tokens)?;
            let kind = match kind_tok {
                "vswitch_crash" => FaultKind::VSwitchCrash {
                    target: fields.req_u32("target")?,
                    restart_after: fields
                        .opt_u64("restart_after_ns")?
                        .map(SimDuration::from_nanos),
                },
                "link_down" => FaultKind::LinkDown {
                    target: fields.req_u32("target")?,
                    duration: fields.req_dur("duration_ns")?,
                },
                "link_flap" => FaultKind::LinkFlap {
                    target: fields.req_u32("target")?,
                    cycles: fields.req_u32("cycles")?,
                    period: fields.req_dur("period_ns")?,
                },
                "link_degrade" => FaultKind::LinkDegrade {
                    target: fields.req_u32("target")?,
                    extra_latency: fields.req_dur("extra_ns")?,
                    duration: fields.req_dur("duration_ns")?,
                },
                "ctrl_loss" => FaultKind::CtrlLoss {
                    p: fields.req_prob("p")?,
                    duration: fields.req_dur("duration_ns")?,
                },
                "ctrl_dup" => FaultKind::CtrlDup {
                    p: fields.req_prob("p")?,
                    duration: fields.req_dur("duration_ns")?,
                },
                "ctrl_reorder" => FaultKind::CtrlReorder {
                    p: fields.req_prob("p")?,
                    jitter: fields.req_dur("jitter_ns")?,
                    duration: fields.req_dur("duration_ns")?,
                },
                "ofa_slowdown" => FaultKind::OfaSlowdown {
                    target: fields.req_u32("target")?,
                    factor: fields.req_f64("factor")?,
                    duration: fields.req_dur("duration_ns")?,
                },
                "controller_stall" => FaultKind::ControllerStall {
                    duration: fields.req_dur("duration_ns")?,
                },
                "replica_crash" => FaultKind::ReplicaCrash {
                    target: fields.req_u32("target")?,
                    restart_after: fields
                        .opt_u64("restart_after_ns")?
                        .map(SimDuration::from_nanos),
                },
                "ctrl_partition" => FaultKind::CtrlPartition {
                    duration: fields.req_dur("duration_ns")?,
                },
                other => return Err(err(lineno, &format!("unknown fault kind `{other}`"))),
            };
            plan.push(at, kind);
        }
        plan.sort();
        Ok(plan)
    }
}

fn err(lineno: usize, msg: &str) -> String {
    format!("fault plan line {lineno}: {msg}")
}

/// Parsed `key=value` fields of one plan line.
struct Fields {
    lineno: usize,
    pairs: Vec<(String, String)>,
}

impl Fields {
    fn parse<'a>(lineno: usize, tokens: impl Iterator<Item = &'a str>) -> Result<Fields, String> {
        let mut pairs = Vec::new();
        for tok in tokens {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| err(lineno, &format!("expected key=value, got `{tok}`")))?;
            pairs.push((k.to_string(), v.to_string()));
        }
        Ok(Fields { lineno, pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn req_u64(&self, key: &str) -> Result<u64, String> {
        let v = self
            .get(key)
            .ok_or_else(|| err(self.lineno, &format!("missing field `{key}`")))?;
        v.parse()
            .map_err(|_| err(self.lineno, &format!("bad integer `{key}={v}`")))
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| err(self.lineno, &format!("bad integer `{key}={v}`"))),
        }
    }

    fn req_u32(&self, key: &str) -> Result<u32, String> {
        let n = self.req_u64(key)?;
        u32::try_from(n).map_err(|_| err(self.lineno, &format!("`{key}` out of range")))
    }

    fn req_dur(&self, key: &str) -> Result<SimDuration, String> {
        Ok(SimDuration::from_nanos(self.req_u64(key)?))
    }

    fn req_f64(&self, key: &str) -> Result<f64, String> {
        let v = self
            .get(key)
            .ok_or_else(|| err(self.lineno, &format!("missing field `{key}`")))?;
        let f: f64 = v
            .parse()
            .map_err(|_| err(self.lineno, &format!("bad number `{key}={v}`")))?;
        if !f.is_finite() {
            return Err(err(self.lineno, &format!("non-finite `{key}={v}`")));
        }
        Ok(f)
    }

    fn req_prob(&self, key: &str) -> Result<f64, String> {
        let f = self.req_f64(key)?;
        if !(0.0..=1.0).contains(&f) {
            return Err(err(
                self.lineno,
                &format!("probability `{key}={f}` outside [0, 1]"),
            ));
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        let mut p = FaultPlan::new();
        p.push(
            SimTime::from_secs(2),
            FaultKind::VSwitchCrash {
                target: 1,
                restart_after: Some(SimDuration::from_secs(3)),
            },
        );
        p.push(
            SimTime::from_secs(1),
            FaultKind::LinkFlap {
                target: 7,
                cycles: 3,
                period: SimDuration::from_millis(200),
            },
        );
        p.push(
            SimTime::from_millis(1500),
            FaultKind::CtrlLoss {
                p: 0.25,
                duration: SimDuration::from_secs(1),
            },
        );
        p.push(
            SimTime::from_secs(4),
            FaultKind::OfaSlowdown {
                target: 0,
                factor: 8.5,
                duration: SimDuration::from_secs(2),
            },
        );
        p.push(
            SimTime::from_secs(5),
            FaultKind::ControllerStall {
                duration: SimDuration::from_millis(750),
            },
        );
        p.push(
            SimTime::from_secs(6),
            FaultKind::ReplicaCrash {
                target: 1,
                restart_after: Some(SimDuration::from_secs(2)),
            },
        );
        p.push(
            SimTime::from_secs(7),
            FaultKind::CtrlPartition {
                duration: SimDuration::from_millis(400),
            },
        );
        p.sort();
        p
    }

    #[test]
    fn render_parse_roundtrip() {
        let plan = sample_plan();
        let text = plan.render();
        let parsed = FaultPlan::parse(&text).unwrap();
        assert_eq!(parsed, plan);
        // Canonical: re-rendering is byte-identical.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let text = "# a pinned plan\n\n1000 link_down target=0 duration_ns=500\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan.events[0].kind,
            FaultKind::LinkDown {
                target: 0,
                duration: SimDuration::from_nanos(500)
            }
        );
    }

    #[test]
    fn parse_sorts_by_time() {
        let text = "2000 controller_stall duration_ns=10\n1000 controller_stall duration_ns=20\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.events[0].at, SimTime::from_nanos(1000));
        assert_eq!(plan.events[1].at, SimTime::from_nanos(2000));
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            "x link_down target=0 duration_ns=1",       // bad timestamp
            "10 no_such_fault target=0",                // unknown kind
            "10 link_down duration_ns=1",               // missing target
            "10 link_down target=0",                    // missing duration
            "10 ctrl_loss p=1.5 duration_ns=1",         // probability out of range
            "10 ctrl_loss p=nope duration_ns=1",        // malformed number
            "10 link_down target=0 duration_ns=1 zing", // not key=value
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn crash_without_restart_roundtrips() {
        let mut p = FaultPlan::new();
        p.push(
            SimTime::from_secs(1),
            FaultKind::VSwitchCrash {
                target: 2,
                restart_after: None,
            },
        );
        let parsed = FaultPlan::parse(&p.render()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn kind_counts_cover_all_kinds() {
        let plan = sample_plan();
        let counts = plan.kind_counts();
        assert_eq!(counts.iter().sum::<usize>(), plan.len());
        assert_eq!(counts[0], 1); // vswitch_crash
        assert_eq!(counts[2], 1); // link_flap
        assert_eq!(counts[4], 1); // ctrl_loss
        assert_eq!(counts[7], 1); // ofa_slowdown
        assert_eq!(counts[8], 1); // controller_stall
        assert_eq!(counts[9], 1); // replica_crash
        assert_eq!(counts[10], 1); // ctrl_partition
    }

    #[test]
    fn replica_crash_without_restart_roundtrips() {
        let mut p = FaultPlan::new();
        p.push(
            SimTime::from_secs(1),
            FaultKind::ReplicaCrash {
                target: 0,
                restart_after: None,
            },
        );
        let parsed = FaultPlan::parse(&p.render()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn kind_names_match_indices() {
        let plan = sample_plan();
        for e in &plan.events {
            assert_eq!(FAULT_KIND_NAMES[e.kind.index()], e.kind.name());
        }
    }
}
