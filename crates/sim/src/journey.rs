//! Causal flow-journey tracing (DESIGN.md §14).
//!
//! The flight recorder (`trace`) answers "what did the control plane do";
//! this module answers "where did *this flow's* setup time go". A traced
//! flow's first packet (the `FlowStart` that triggers the reactive
//! Packet-In path) is followed through its whole lifecycle — host uplink,
//! default-rule tunnel hops, OFA punt, controller ingress queue, decision,
//! rule install / overlay path setup, delivery — and every milestone is
//! recorded as a [`JourneyMark`] point event. Stage *spans* are
//! reconstructed offline as the gaps between consecutive marks, so the
//! per-stage durations of a delivered journey telescope exactly to its
//! end-to-end setup latency: no double counting, no gaps, to the tick.
//!
//! ## Determinism & sharding
//!
//! A journey id is the flow id — already carried by every packet, so it
//! crosses shard boundaries with the packet itself and needs no extra
//! handoff state. Whether a flow is traced is a pure hash of
//! `(flow id, seed)` against the sampling rate (the same stateless-fork
//! discipline as the PR 7 packet sampler), which makes the selection — and
//! therefore every mark — independent of shard count. Each lane records
//! into its own `JourneyRecorder`; the driver absorbs lane marks into the
//! hub before the report is built, and [`JourneyRecorder::canonicalize`]
//! sorts by `(journey, time, point, node, info)` — deliberately *excluding*
//! the observational `shard` field, which legitimately differs between
//! shard counts — so the canonical mark stream is byte-identical for
//! shards 1/2/4/8.

use crate::metrics::Histogram;
use crate::time::{SimDuration, SimTime};

/// Stream constant folded into the seed for journey selection, so journey
/// draws are independent of the workload and packet-sampler streams.
pub const JOURNEY_STREAM: u64 = 0x4A6F_7572_6E65;

/// Default sampling rate when journey tracing is enabled without an
/// explicit rate (1/64, matching the telemetry sampling default ladder).
pub const DEFAULT_JOURNEY_RATE: f64 = 1.0 / 64.0;

/// Default bound on retained marks (~24 B each; 1M marks ≈ 24 MiB).
pub const DEFAULT_JOURNEY_CAPACITY: usize = 1 << 20;

/// Lifecycle milestone of a traced flow's first packet.
///
/// Discriminant order is lifecycle order: marks that land on the same tick
/// sort into causal order by this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum JourneyPoint {
    /// First packet leaves its source host.
    Emit = 0,
    /// First packet arrives at a switch, vSwitch, or middlebox
    /// (`info` bit 0: arrived through an overlay tunnel; bit 1: the node
    /// is a middlebox).
    Arrive = 1,
    /// A switch OFA emits the Packet-In carrying the first packet
    /// (`info` bit 0: punted by a mesh vSwitch on behalf of a physical
    /// switch, i.e. the overlay path).
    OfaOut = 2,
    /// The Packet-In reaches the controller.
    CtrlRx = 3,
    /// The controller-capacity gate releases the message for processing
    /// (only present when `controller_capacity` is configured).
    CtrlDeq = 4,
    /// The controller decides the flow's fate (`info`: a `VERDICT_*`
    /// constant).
    Decision = 5,
    /// A chaos perturbation touched a control message carrying this
    /// journey's first packet (`info`: the `PERTURB_*` kind). Annotation
    /// only — never segments the timeline.
    Fault = 6,
    /// The flow was migrated from the overlay to a physical path
    /// (`info` = 1 when the migration was deferred on a hot switch).
    /// Annotation only.
    Migration = 7,
    /// The first packet was dropped (`info`: a `DROP_*` constant).
    /// Terminal.
    Drop = 8,
    /// The first packet reached its destination host. Terminal.
    Deliver = 9,
    /// Synthesized at report time for a journey with no terminal mark:
    /// the first packet was still in flight (or silently absorbed by a
    /// fault) when the horizon hit. Terminal.
    Cancel = 10,
    /// A mastership handoff released this journey's pending Packet-In to a
    /// new master replica (`info` = `old_replica << 32 | new_replica`,
    /// with `u32::MAX` in the high half when the old master is unknown).
    /// Annotation only — never segments the timeline.
    Handoff = 11,
}

/// All points, in lifecycle (discriminant) order.
pub const JOURNEY_POINTS: [JourneyPoint; 12] = [
    JourneyPoint::Emit,
    JourneyPoint::Arrive,
    JourneyPoint::OfaOut,
    JourneyPoint::CtrlRx,
    JourneyPoint::CtrlDeq,
    JourneyPoint::Decision,
    JourneyPoint::Fault,
    JourneyPoint::Migration,
    JourneyPoint::Drop,
    JourneyPoint::Deliver,
    JourneyPoint::Cancel,
    JourneyPoint::Handoff,
];

impl JourneyPoint {
    /// Stable snake_case name (JSONL export key).
    pub fn name(self) -> &'static str {
        match self {
            JourneyPoint::Emit => "emit",
            JourneyPoint::Arrive => "arrive",
            JourneyPoint::OfaOut => "ofa_out",
            JourneyPoint::CtrlRx => "ctrl_rx",
            JourneyPoint::CtrlDeq => "ctrl_deq",
            JourneyPoint::Decision => "decision",
            JourneyPoint::Fault => "fault",
            JourneyPoint::Migration => "migration",
            JourneyPoint::Drop => "drop",
            JourneyPoint::Deliver => "deliver",
            JourneyPoint::Cancel => "cancel",
            JourneyPoint::Handoff => "handoff",
        }
    }

    /// True for marks that end a journey.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JourneyPoint::Drop | JourneyPoint::Deliver | JourneyPoint::Cancel
        )
    }

    /// True for zero-width annotations that never segment the timeline.
    pub fn is_annotation(self) -> bool {
        matches!(
            self,
            JourneyPoint::Fault | JourneyPoint::Migration | JourneyPoint::Handoff
        )
    }
}

/// `Decision` verdicts (the mark's `info` field).
pub const VERDICT_DIRECT: u64 = 0;
/// Routed over the vSwitch overlay.
pub const VERDICT_OVERLAY: u64 = 1;
/// Dropped by the ingress-queue drop threshold. Terminal.
pub const VERDICT_DROP: u64 = 2;
/// No route / no overlay delivery point for the destination. Terminal.
pub const VERDICT_UNROUTABLE: u64 = 3;
/// Setup-race duplicate: relayed directly out of the destination edge.
pub const VERDICT_DUPLICATE: u64 = 4;

/// Names for the `Decision` verdicts, indexed by the constants above.
pub const VERDICT_NAMES: [&str; 5] = ["direct", "overlay", "drop", "unroutable", "duplicate"];

/// `Drop` reason (`info`): dropped by a device (values 0..16 mirror the
/// switch `DropReason` discriminants).
pub const DROP_LINK: u64 = 16;
/// `Drop` reason: rejected by the controller-capacity gate.
pub const DROP_CTRL_REJECT: u64 = 17;

/// One milestone of one traced flow. 32 bytes, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JourneyMark {
    /// Journey id (= the flow id's raw value).
    pub journey: u64,
    /// Simulation time of the milestone.
    pub at: SimTime,
    /// Which milestone.
    pub point: JourneyPoint,
    /// Shard that recorded the mark. Observational only: it depends on the
    /// shard count, so it is excluded from the canonical order and export.
    pub shard: u16,
    /// Node the milestone happened at (`u32::MAX` = the controller).
    pub node: u32,
    /// Point-specific payload (see the [`JourneyPoint`] docs).
    pub info: u64,
}

impl JourneyMark {
    /// Canonical sort key: shard is deliberately excluded (it is the one
    /// field that legitimately differs between shard counts).
    fn key(&self) -> (u64, SimTime, u8, u32, u64) {
        (
            self.journey,
            self.at,
            self.point as u8,
            self.node,
            self.info,
        )
    }
}

/// Journey-tracing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyConfig {
    /// Fraction of flows traced end-to-end (hash-selected per flow id).
    pub rate: f64,
    /// Flow ids always traced regardless of the rate (CLI `--journey`).
    pub always: Vec<u64>,
    /// Bound on retained marks; excess marks are counted, not stored.
    pub capacity: usize,
}

impl Default for JourneyConfig {
    fn default() -> Self {
        JourneyConfig {
            rate: DEFAULT_JOURNEY_RATE,
            always: Vec::new(),
            capacity: DEFAULT_JOURNEY_CAPACITY,
        }
    }
}

/// SplitMix64 finalizer: the avalanche mix used to turn a flow id into a
/// uniform 64-bit draw. Stateless, so the decision for a flow is a pure
/// function of `(flow id, seed)` — independent of event interleaving and
/// shard count by construction.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-lane recorder of journey marks.
///
/// Disabled (the default) it costs one predicted branch per site. Enabled,
/// a mark site costs a hash + compare for the selection check and a `Vec`
/// push when selected.
#[derive(Debug, Clone)]
pub struct JourneyRecorder {
    on: bool,
    /// A flow is traced iff `mix64(id ^ stream) < threshold`.
    threshold: u64,
    stream: u64,
    /// Sorted explicit always-trace set.
    always: Vec<u64>,
    capacity: usize,
    shard: u16,
    marks: Vec<JourneyMark>,
    total: u64,
    dropped: u64,
    rate: f64,
}

impl Default for JourneyRecorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl JourneyRecorder {
    /// The no-op recorder (default on every simulation).
    pub fn disabled() -> Self {
        JourneyRecorder {
            on: false,
            threshold: 0,
            stream: 0,
            always: Vec::new(),
            capacity: 0,
            shard: 0,
            marks: Vec::new(),
            total: 0,
            dropped: 0,
            rate: 0.0,
        }
    }

    /// Build an enabled recorder. `seed` is the scenario seed; the journey
    /// stream constant is folded in so selection draws are independent of
    /// every other consumer of the seed.
    pub fn new(config: &JourneyConfig, seed: u64) -> Self {
        assert!(
            config.rate > 0.0 && config.rate <= 1.0,
            "journey rate must be in (0, 1], got {}",
            config.rate
        );
        let threshold = if config.rate >= 1.0 {
            u64::MAX
        } else {
            (config.rate * (u64::MAX as f64)) as u64
        };
        let mut always = config.always.clone();
        always.sort_unstable();
        always.dedup();
        JourneyRecorder {
            on: true,
            threshold,
            stream: seed ^ JOURNEY_STREAM,
            always,
            capacity: config.capacity,
            shard: 0,
            marks: Vec::new(),
            total: 0,
            dropped: 0,
            rate: config.rate,
        }
    }

    /// True when recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Configured sampling rate (0 when disabled).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Label marks recorded by this lane with its shard id.
    pub fn set_shard(&mut self, shard: u16) {
        self.shard = shard;
    }

    /// Should this flow's journey be traced? Pure in `(journey, seed)`.
    #[inline]
    pub fn wants(&self, journey: u64) -> bool {
        if !self.on {
            return false;
        }
        if mix64(journey ^ self.stream) < self.threshold {
            return true;
        }
        !self.always.is_empty() && self.always.binary_search(&journey).is_ok()
    }

    /// Record one milestone. Callers gate on [`JourneyRecorder::wants`].
    #[inline]
    pub fn record(&mut self, journey: u64, at: SimTime, point: JourneyPoint, node: u32, info: u64) {
        self.total += 1;
        if self.marks.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.marks.push(JourneyMark {
            journey,
            at,
            point,
            shard: self.shard,
            node,
            info,
        });
    }

    /// Total marks offered (including any dropped over capacity).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Marks dropped over the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fold another lane's marks (and counters) into this recorder.
    pub fn absorb(&mut self, other: &mut JourneyRecorder) {
        self.marks.append(&mut other.marks);
        self.total += other.total;
        self.dropped += other.dropped;
        other.total = 0;
        other.dropped = 0;
    }

    /// Sort into the canonical `(journey, at, point, node, info)` order —
    /// the order every export and reconstruction consumes. Shard is
    /// excluded (see the module docs).
    pub fn canonicalize(&mut self) {
        self.marks.sort_by_key(|m| m.key());
    }

    /// Append `Cancel` marks (at `until`) for every journey that has marks
    /// but no terminal, then re-canonicalize. Called once at report time so
    /// every opened journey is provably closed.
    pub fn close_open(&mut self, until: SimTime) {
        let mut open: Vec<u64> = Vec::new();
        let mut closed: Vec<u64> = Vec::new();
        self.canonicalize();
        for group in self.marks.chunk_by(|a, b| a.journey == b.journey) {
            if group.iter().any(|m| m.point.is_terminal()) {
                closed.push(group[0].journey);
            } else {
                open.push(group[0].journey);
            }
        }
        let _ = closed;
        for j in open {
            self.record(j, until, JourneyPoint::Cancel, u32::MAX, 0);
        }
        self.canonicalize();
    }

    /// The canonical mark stream (call [`JourneyRecorder::canonicalize`] or
    /// [`JourneyRecorder::close_open`] first).
    pub fn marks(&self) -> &[JourneyMark] {
        &self.marks
    }

    /// Take the marks out (report construction).
    pub fn take_marks(&mut self) -> Vec<JourneyMark> {
        std::mem::take(&mut self.marks)
    }
}

// ---------------------------------------------------------------------------
// Reconstruction: marks -> per-journey timelines -> stage spans
// ---------------------------------------------------------------------------

/// Lifecycle stage of a reconstructed span — the answer to "where did the
/// setup time go".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Source host uplink: emission → first switch arrival.
    HostLink = 0,
    /// Switch-to-switch transit on the physical fabric (pre-decision).
    FabricTransit = 1,
    /// Label-switched transit inside an overlay tunnel (pre-decision).
    TunnelTransit = 2,
    /// OFA residency: arrival at the punting switch → Packet-In emission.
    OfaQueue = 3,
    /// Control-channel transit: Packet-In emission → controller arrival.
    CtrlLink = 4,
    /// Controller-capacity gate residency (only when a gate is configured).
    CtrlGate = 5,
    /// Ingress-port queue residency: controller arrival → decision.
    IngressQueue = 6,
    /// Rule install + PacketOut: decision → the packet re-appears in the
    /// data plane.
    Install = 7,
    /// Post-decision data-plane transit down to the destination host.
    Delivery = 8,
    /// The span that ends in a drop or a horizon cancel.
    Loss = 9,
    /// Any mark pair outside the expected lifecycle grammar (e.g. the
    /// relay path of a duplicate Packet-In).
    Other = 10,
}

/// All stages, in lifecycle order.
pub const STAGES: [Stage; 11] = [
    Stage::HostLink,
    Stage::FabricTransit,
    Stage::TunnelTransit,
    Stage::OfaQueue,
    Stage::CtrlLink,
    Stage::CtrlGate,
    Stage::IngressQueue,
    Stage::Install,
    Stage::Delivery,
    Stage::Loss,
    Stage::Other,
];

impl Stage {
    /// Stable snake_case name (metrics keys, JSONL export).
    pub fn name(self) -> &'static str {
        match self {
            Stage::HostLink => "host_link",
            Stage::FabricTransit => "fabric_transit",
            Stage::TunnelTransit => "tunnel_transit",
            Stage::OfaQueue => "ofa_queue",
            Stage::CtrlLink => "ctrl_link",
            Stage::CtrlGate => "ctrl_gate",
            Stage::IngressQueue => "ingress_queue",
            Stage::Install => "install",
            Stage::Delivery => "delivery",
            Stage::Loss => "loss",
            Stage::Other => "other",
        }
    }
}

/// Classify the span between two consecutive (non-annotation) marks.
/// `decided` is true once a `Decision` mark has been passed.
pub fn stage_of(prev: &JourneyMark, next: &JourneyMark, decided: bool) -> Stage {
    use JourneyPoint as P;
    match (prev.point, next.point) {
        (P::Emit, P::Arrive) => Stage::HostLink,
        (P::Emit, P::Deliver) => Stage::HostLink,
        (_, P::Drop) | (_, P::Cancel) => Stage::Loss,
        (P::Arrive, P::Arrive) if !decided => {
            if next.info & 1 != 0 {
                Stage::TunnelTransit
            } else {
                Stage::FabricTransit
            }
        }
        (P::Arrive, P::OfaOut) => Stage::OfaQueue,
        (P::OfaOut, P::CtrlRx) => Stage::CtrlLink,
        (P::CtrlRx, P::CtrlDeq) => Stage::CtrlGate,
        (P::CtrlRx, P::Decision) | (P::CtrlDeq, P::Decision) => Stage::IngressQueue,
        (P::Decision, P::Arrive) => Stage::Install,
        (P::Decision, P::Deliver) => Stage::Install,
        (P::Arrive, P::Arrive) => Stage::Delivery,
        (P::Arrive, P::Deliver) => Stage::Delivery,
        _ => Stage::Other,
    }
}

/// One reconstructed span of a journey timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Owning journey.
    pub journey: u64,
    /// Stage classification.
    pub stage: Stage,
    /// Open time (the earlier mark).
    pub open: SimTime,
    /// Close time (the later mark).
    pub close: SimTime,
    /// Node at the open mark.
    pub from_node: u32,
    /// Node at the close mark.
    pub to_node: u32,
    /// Shard that recorded the close mark (observational; excluded from
    /// canonical output).
    pub shard: u16,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> SimDuration {
        self.close.duration_since(self.open)
    }
}

/// One journey's canonical marks, grouped for reconstruction.
#[derive(Debug, Clone)]
pub struct JourneyView {
    /// Journey id.
    pub id: u64,
    /// Canonically ordered marks (annotations included).
    pub marks: Vec<JourneyMark>,
}

impl JourneyView {
    /// Group a canonical mark stream into per-journey views (the stream
    /// is already journey-major after canonicalization).
    pub fn split(marks: &[JourneyMark]) -> Vec<JourneyView> {
        marks
            .chunk_by(|a, b| a.journey == b.journey)
            .map(|g| JourneyView {
                id: g[0].journey,
                marks: g.to_vec(),
            })
            .collect()
    }

    /// First mark time.
    pub fn start(&self) -> SimTime {
        self.marks.first().map(|m| m.at).unwrap_or(SimTime::ZERO)
    }

    /// Last mark time.
    pub fn end(&self) -> SimTime {
        self.marks.last().map(|m| m.at).unwrap_or(SimTime::ZERO)
    }

    /// The first terminal mark, if any.
    pub fn terminal(&self) -> Option<&JourneyMark> {
        self.marks.iter().find(|m| m.point.is_terminal())
    }

    /// True when the journey's first packet reached its destination.
    pub fn is_delivered(&self) -> bool {
        self.terminal()
            .is_some_and(|m| m.point == JourneyPoint::Deliver)
    }

    /// Start → first terminal (falls back to the last mark).
    pub fn total(&self) -> SimDuration {
        let end = self.terminal().map(|m| m.at).unwrap_or_else(|| self.end());
        end.duration_since(self.start())
    }

    /// Annotation marks (faults, migrations) — shown inline, never
    /// segmented.
    pub fn annotations(&self) -> impl Iterator<Item = &JourneyMark> {
        self.marks.iter().filter(|m| m.point.is_annotation())
    }

    /// Reconstruct the stage spans up to (and including) the first
    /// terminal mark. Annotations are skipped; the spans partition
    /// `[start, terminal]` exactly, so their durations telescope to
    /// [`JourneyView::total`].
    pub fn segments(&self) -> Vec<Span> {
        let mut out = Vec::new();
        let mut decided = false;
        let mut prev: Option<&JourneyMark> = None;
        for m in &self.marks {
            if m.point.is_annotation() {
                continue;
            }
            if let Some(p) = prev {
                out.push(Span {
                    journey: self.id,
                    stage: stage_of(p, m, decided),
                    open: p.at,
                    close: m.at,
                    from_node: p.node,
                    to_node: m.node,
                    shard: m.shard,
                });
            }
            if m.point == JourneyPoint::Decision {
                decided = true;
            }
            prev = Some(m);
            if m.point.is_terminal() {
                break;
            }
        }
        out
    }
}

/// Per-stage latency aggregation over a canonical mark stream.
#[derive(Debug, Clone)]
pub struct LatencyDecomposition {
    /// One histogram of span durations (ns) per stage, indexed by
    /// `Stage as u8`; only stages with at least one span are meaningful.
    pub stages: Vec<(Stage, Histogram)>,
    /// End-to-end (start → terminal) duration histogram over delivered
    /// journeys (ns).
    pub setup: Histogram,
    /// Journeys seen.
    pub journeys: u64,
    /// Journeys whose first packet was delivered.
    pub delivered: u64,
    /// Journeys ending in an explicit drop.
    pub dropped: u64,
    /// Journeys cancelled at the horizon.
    pub cancelled: u64,
}

impl LatencyDecomposition {
    /// Aggregate a canonical mark stream.
    pub fn from_marks(marks: &[JourneyMark]) -> Self {
        let mut stages: Vec<(Stage, Histogram)> =
            STAGES.iter().map(|s| (*s, Histogram::new())).collect();
        let mut setup = Histogram::new();
        let (mut journeys, mut delivered, mut dropped, mut cancelled) = (0u64, 0u64, 0u64, 0u64);
        for view in JourneyView::split(marks) {
            journeys += 1;
            match view.terminal().map(|m| m.point) {
                Some(JourneyPoint::Deliver) => {
                    delivered += 1;
                    setup.record_duration(view.total());
                }
                Some(JourneyPoint::Cancel) => cancelled += 1,
                _ => dropped += 1,
            }
            for span in view.segments() {
                stages[span.stage as usize]
                    .1
                    .record_duration(span.duration());
            }
        }
        LatencyDecomposition {
            stages,
            setup,
            journeys,
            delivered,
            dropped,
            cancelled,
        }
    }

    /// `(p50, p95, p99)` of a stage's span durations, in nanoseconds.
    pub fn stage_quantiles(&self, stage: Stage) -> (f64, f64, f64) {
        let h = &self.stages[stage as usize].1;
        (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn mark(j: u64, at: SimTime, point: JourneyPoint, node: u32, info: u64) -> JourneyMark {
        JourneyMark {
            journey: j,
            at,
            point,
            shard: 0,
            node,
            info,
        }
    }

    #[test]
    fn selection_is_pure_and_rate_scales() {
        let cfg = JourneyConfig {
            rate: 1.0 / 64.0,
            ..Default::default()
        };
        let a = JourneyRecorder::new(&cfg, 42);
        let b = JourneyRecorder::new(&cfg, 42);
        let picked: Vec<u64> = (0..100_000).filter(|j| a.wants(*j)).collect();
        let again: Vec<u64> = (0..100_000).filter(|j| b.wants(*j)).collect();
        assert_eq!(picked, again, "selection must be pure in (id, seed)");
        // Expect ~1562 of 100k at 1/64; allow a generous band.
        assert!(
            (500..4000).contains(&picked.len()),
            "rate wildly off: {}",
            picked.len()
        );
        // Different seed, different set.
        let c = JourneyRecorder::new(&cfg, 43);
        let other: Vec<u64> = (0..100_000).filter(|j| c.wants(*j)).collect();
        assert_ne!(picked, other);
    }

    #[test]
    fn always_set_overrides_rate() {
        let cfg = JourneyConfig {
            rate: 1.0 / 64.0,
            always: vec![7, 7, 3],
            ..Default::default()
        };
        let r = JourneyRecorder::new(&cfg, 1);
        assert!(r.wants(7));
        assert!(r.wants(3));
    }

    #[test]
    fn rate_one_traces_everything() {
        let cfg = JourneyConfig {
            rate: 1.0,
            ..Default::default()
        };
        let r = JourneyRecorder::new(&cfg, 9);
        assert!((0..1000).all(|j| r.wants(j)));
    }

    #[test]
    fn disabled_recorder_wants_nothing() {
        let r = JourneyRecorder::disabled();
        assert!(!r.wants(0));
        assert!(!r.is_enabled());
    }

    #[test]
    fn capacity_bound_counts_overflow() {
        let cfg = JourneyConfig {
            rate: 1.0,
            capacity: 2,
            ..Default::default()
        };
        let mut r = JourneyRecorder::new(&cfg, 0);
        for i in 0..5 {
            r.record(i, t(i), JourneyPoint::Emit, 0, 0);
        }
        assert_eq!(r.marks().len(), 2);
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn canonical_order_ignores_shard() {
        let mut a = JourneyRecorder::new(
            &JourneyConfig {
                rate: 1.0,
                ..Default::default()
            },
            0,
        );
        a.set_shard(3);
        a.record(5, t(2), JourneyPoint::Arrive, 9, 0);
        a.record(5, t(1), JourneyPoint::Emit, 1, 0);
        let mut b = JourneyRecorder::new(
            &JourneyConfig {
                rate: 1.0,
                ..Default::default()
            },
            0,
        );
        b.record(2, t(3), JourneyPoint::Emit, 4, 0);
        a.absorb(&mut b);
        a.canonicalize();
        let pts: Vec<(u64, JourneyPoint)> =
            a.marks().iter().map(|m| (m.journey, m.point)).collect();
        assert_eq!(
            pts,
            vec![
                (2, JourneyPoint::Emit),
                (5, JourneyPoint::Emit),
                (5, JourneyPoint::Arrive)
            ]
        );
        assert_eq!(a.marks()[1].shard, 3, "shard survives as metadata");
    }

    #[test]
    fn close_open_cancels_exactly_the_open_journeys() {
        let cfg = JourneyConfig {
            rate: 1.0,
            ..Default::default()
        };
        let mut r = JourneyRecorder::new(&cfg, 0);
        r.record(1, t(1), JourneyPoint::Emit, 0, 0);
        r.record(1, t(2), JourneyPoint::Deliver, 5, 0);
        r.record(2, t(1), JourneyPoint::Emit, 0, 0);
        r.close_open(t(10));
        let views = JourneyView::split(r.marks());
        assert!(views.iter().all(|v| v.terminal().is_some()));
        let cancelled: Vec<u64> = views
            .iter()
            .filter(|v| v.terminal().unwrap().point == JourneyPoint::Cancel)
            .map(|v| v.id)
            .collect();
        assert_eq!(cancelled, vec![2]);
        assert_eq!(views[0].terminal().unwrap().at, t(2));
    }

    #[test]
    fn segmentation_telescopes_to_setup_latency() {
        // Emit → Arrive(sw) → OfaOut → CtrlRx → Decision(direct) →
        // Arrive(sw, post-install) → Deliver, with a fault annotation
        // in the middle that must not break the partition.
        let marks = vec![
            mark(9, t(0), JourneyPoint::Emit, 1, 0),
            mark(9, t(1), JourneyPoint::Arrive, 2, 0),
            mark(9, t(3), JourneyPoint::OfaOut, 2, 0),
            mark(9, t(4), JourneyPoint::CtrlRx, 2, 0),
            mark(9, t(5), JourneyPoint::Fault, 2, 1),
            mark(9, t(7), JourneyPoint::Decision, 2, VERDICT_DIRECT),
            mark(9, t(9), JourneyPoint::Arrive, 3, 0),
            mark(9, t(10), JourneyPoint::Deliver, 4, 0),
        ];
        let view = &JourneyView::split(&marks)[0];
        let segs = view.segments();
        let stages: Vec<Stage> = segs.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::HostLink,
                Stage::OfaQueue,
                Stage::CtrlLink,
                Stage::IngressQueue,
                Stage::Install,
                Stage::Delivery,
            ]
        );
        let sum: u64 = segs.iter().map(|s| s.duration().as_nanos()).sum();
        assert_eq!(sum, view.total().as_nanos(), "spans must telescope");
        // Contiguity: every span opens where the previous one closed.
        for w in segs.windows(2) {
            assert_eq!(w[0].close, w[1].open);
        }
    }

    #[test]
    fn tunnel_and_gate_stages_classify() {
        let marks = vec![
            mark(1, t(0), JourneyPoint::Emit, 1, 0),
            mark(1, t(1), JourneyPoint::Arrive, 2, 0),
            mark(1, t(2), JourneyPoint::Arrive, 3, 1), // tunneled hop
            mark(1, t(3), JourneyPoint::Arrive, 4, 1),
            mark(1, t(4), JourneyPoint::OfaOut, 4, 1),
            mark(1, t(5), JourneyPoint::CtrlRx, 4, 0),
            mark(1, t(6), JourneyPoint::CtrlDeq, 4, 0),
            mark(1, t(8), JourneyPoint::Decision, 4, VERDICT_OVERLAY),
            mark(1, t(9), JourneyPoint::Arrive, 5, 1),
            mark(1, t(10), JourneyPoint::Arrive, 6, 0),
            mark(1, t(11), JourneyPoint::Deliver, 7, 0),
        ];
        let view = &JourneyView::split(&marks)[0];
        let stages: Vec<Stage> = view.segments().iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::HostLink,
                Stage::TunnelTransit,
                Stage::TunnelTransit,
                Stage::OfaQueue,
                Stage::CtrlLink,
                Stage::CtrlGate,
                Stage::IngressQueue,
                Stage::Install,
                Stage::Delivery,
                Stage::Delivery,
            ]
        );
    }

    #[test]
    fn loss_and_decomposition_counters() {
        let marks = vec![
            mark(1, t(0), JourneyPoint::Emit, 1, 0),
            mark(1, t(2), JourneyPoint::Drop, 2, DROP_LINK),
            mark(2, t(0), JourneyPoint::Emit, 1, 0),
            mark(2, t(1), JourneyPoint::Arrive, 2, 0),
            mark(2, t(5), JourneyPoint::Cancel, u32::MAX, 0),
            mark(3, t(0), JourneyPoint::Emit, 1, 0),
            mark(3, t(4), JourneyPoint::Deliver, 9, 0),
        ];
        let d = LatencyDecomposition::from_marks(&marks);
        assert_eq!(d.journeys, 3);
        assert_eq!(d.delivered, 1);
        assert_eq!(d.dropped, 1);
        assert_eq!(d.cancelled, 1);
        assert_eq!(d.setup.count(), 1);
        assert_eq!(d.stages[Stage::Loss as usize].1.count(), 2);
    }

    #[test]
    fn segments_stop_at_first_terminal() {
        // A duplicate-relay tail after Deliver must not create spans.
        let marks = vec![
            mark(4, t(0), JourneyPoint::Emit, 1, 0),
            mark(4, t(2), JourneyPoint::Deliver, 5, 0),
            mark(4, t(3), JourneyPoint::Arrive, 6, 0),
        ];
        let view = &JourneyView::split(&marks)[0];
        assert_eq!(view.segments().len(), 1);
        assert_eq!(view.total(), SimDuration::from_millis(2));
    }
}
