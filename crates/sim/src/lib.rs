#![warn(missing_docs)]

//! # scotch-sim
//!
//! Deterministic discrete-event simulation (DES) engine underpinning the
//! Scotch reproduction.
//!
//! The paper's evaluation runs on a hardware testbed (Pica8 / HP switches,
//! Open vSwitch hosts, a Ryu controller). This crate provides the substrate
//! that replaces that testbed: a single-threaded, seeded, bit-reproducible
//! event engine plus the measurement instruments (`metrics`) and rate models
//! (`rate`) shared by every simulated component.
//!
//! Design follows the event-driven, no-inversion-of-control style of
//! `smoltcp`: components are plain state machines; the composition root owns
//! the [`EventQueue`] and routes outputs between components.
//!
//! ## Determinism
//!
//! * All randomness flows through [`rng::SimRng`], seeded from a `u64`.
//! * Event ties at equal timestamps are broken by a monotonically increasing
//!   sequence number, so pop order is a pure function of push order.

pub mod event;
pub mod fault;
pub mod hash;
pub mod journey;
pub mod metrics;
pub mod rate;
pub mod registry;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventQueue, HeapEventQueue};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FAULT_KIND_COUNT, FAULT_KIND_NAMES};
pub use hash::{FxHashMap, FxHashSet};
pub use journey::{
    JourneyConfig, JourneyMark, JourneyPoint, JourneyRecorder, JourneyView, LatencyDecomposition,
    Span, Stage,
};
pub use registry::{
    DispatchProfiler, EpochProfiler, LaneProfileEntry, MetricsRegistry, MetricsSnapshot,
    ProfileEntry,
};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCategory, TraceConfig, TraceEvent, TraceLevel, TraceRecord, TraceRecorder};
