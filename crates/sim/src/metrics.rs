//! Measurement instruments.
//!
//! The paper measures with `tcpdump` traces post-processed into rates and
//! fractions; we measure inside the simulator with the equivalents here:
//!
//! * [`Counter`] — monotone event counts (packets forwarded, flows failed).
//! * [`RateMeter`] — windowed events-per-second estimates (Packet-In rate at
//!   the controller, the signal Scotch's monitor thresholds on).
//! * [`Histogram`] — latency / size distributions with quantile queries.
//! * [`TimeSeries`] — `(t, value)` samples for plotting figure series.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A sliding-window rate estimator.
///
/// `tick(now)` records one event; `rate(now)` returns events/second over the
/// trailing window. This is the estimator the Scotch controller uses to
/// decide overlay activation and withdrawal (paper §4.2, §5.5).
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: SimDuration,
    /// Coalesced `(timestamp, count)` entries: simultaneous events share one
    /// entry, so memory is O(distinct timestamps in window), not O(events) —
    /// the difference between kilobytes and gigabytes under a DDoS surge.
    events: VecDeque<(SimTime, u64)>,
    /// Events inside the trailing window (sum of `events` counts).
    in_window: u64,
    /// Total events ever observed (not windowed).
    total: u64,
}

impl RateMeter {
    /// A meter with the given trailing window.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        RateMeter {
            window,
            events: VecDeque::new(),
            in_window: 0,
            total: 0,
        }
    }

    /// Record one event at `now`.
    pub fn tick(&mut self, now: SimTime) {
        self.tick_n(now, 1);
    }

    /// Record `n` simultaneous events at `now`.
    pub fn tick_n(&mut self, now: SimTime, n: u64) {
        self.total += n;
        self.in_window += n;
        match self.events.back_mut() {
            Some((t, count)) if *t == now => *count += n,
            _ => self.events.push_back((now, n)),
        }
        self.expire(now);
    }

    fn expire(&mut self, now: SimTime) {
        let horizon = now.saturating_sub(self.window);
        while let Some(&(front, count)) = self.events.front() {
            if front < horizon {
                self.in_window -= count;
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Events per second over the trailing window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.expire(now);
        self.in_window as f64 / self.window.as_secs_f64()
    }

    /// Total events ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A histogram with linear-over-log bucketing and quantile queries.
///
/// Values are bucketed by order of magnitude with 16 linear sub-buckets per
/// decade, giving ≤ ~7 % relative error on quantiles across nine decades —
/// plenty for latency CDFs.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// buckets[d][s]: decade d (10^d .. 10^(d+1)), sub-bucket s of 16.
    buckets: Vec<[u64; 16]>,
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const DECADES: usize = 12;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![[0; 16]; DECADES],
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn locate(value: f64) -> Option<(usize, usize)> {
        if value < 1.0 {
            return None; // tracked in zero_count
        }
        let d = (value.log10().floor() as usize).min(DECADES - 1);
        let lo = 10f64.powi(d as i32);
        let frac = (value - lo) / (lo * 9.0);
        let s = ((frac * 16.0) as usize).min(15);
        Some((d, s))
    }

    /// Record a (non-negative) observation. Negative values are clamped to 0.
    pub fn record(&mut self, value: f64) {
        let value = value.max(0.0);
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match Self::locate(value) {
            None => self.zero_count += 1,
            Some((d, s)) => self.buckets[d][s] += 1,
        }
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos() as f64);
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (row, orow) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            for (n, on) in row.iter_mut().zip(orow.iter()) {
                *n += *on;
            }
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or 0 for an empty histogram.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Observations below 1.0 (kept outside the decade buckets).
    pub fn zero_count(&self) -> u64 {
        self.zero_count
    }

    /// Non-empty buckets as `(decade, sub_bucket, count)` triples, in
    /// ascending value order — a compact, loss-free dump of the histogram
    /// shape for serialization.
    pub fn nonzero_buckets(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for (d, row) in self.buckets.iter().enumerate() {
            for (s, &n) in row.iter().enumerate() {
                if n > 0 {
                    out.push((d, s, n));
                }
            }
        }
        out
    }

    /// Approximate quantile `q` in `[0, 1]`. Returns 0 for empty histograms.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero_count;
        if seen >= target {
            return 0.0;
        }
        for d in 0..DECADES {
            for s in 0..16 {
                seen += self.buckets[d][s];
                if seen >= target {
                    // Bucket lower edge: 10^d + s/16 * (9 * 10^d).
                    let lo = 10f64.powi(d as i32);
                    let edge = lo + (s as f64 / 16.0) * lo * 9.0;
                    let width = lo * 9.0 / 16.0;
                    return (edge + width / 2.0).min(self.max).max(self.min);
                }
            }
        }
        self.max
    }
}

/// A `(time, value)` series for plotting a figure curve.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a sample at time `t`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// The recorded points as `(seconds, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (ignoring time), 0 when empty.
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn rate_meter_windowing() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        for i in 0..10 {
            m.tick(SimTime::from_millis(i * 100));
        }
        // All ten events inside the last second.
        assert_eq!(m.rate(SimTime::from_millis(900)), 10.0);
        // 2 seconds later, everything expired.
        assert_eq!(m.rate(SimTime::from_millis(2900)), 0.0);
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn rate_meter_partial_expiry() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.tick(SimTime::from_millis(0));
        m.tick(SimTime::from_millis(500));
        m.tick(SimTime::from_millis(1000));
        // Window [200, 1200): events at 500 and 1000 remain.
        assert_eq!(m.rate(SimTime::from_millis(1200)), 2.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rate_meter_rejects_zero_window() {
        let _ = RateMeter::new(SimDuration::ZERO);
    }

    #[test]
    fn rate_meter_coalesces_simultaneous_events() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        // A burst of 100k simultaneous events must cost one deque entry,
        // not 100k — same rate()/total() semantics either way.
        m.tick_n(SimTime::from_millis(100), 100_000);
        m.tick(SimTime::from_millis(100));
        m.tick_n(SimTime::from_millis(200), 5);
        assert_eq!(m.events.len(), 2);
        assert_eq!(m.rate(SimTime::from_millis(200)), 100_006.0);
        assert_eq!(m.total(), 100_006);
        // The whole burst expires together.
        assert_eq!(m.rate(SimTime::from_millis(1150)), 5.0);
        assert_eq!(m.rate(SimTime::from_millis(2000)), 0.0);
        assert_eq!(m.total(), 100_006);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.10, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.10, "p99={p99}");
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_clamps_negative() {
        let mut h = Histogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn timeseries_records() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 20.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.points()[1], (2.0, 20.0));
        assert_eq!(ts.mean_value(), 15.0);
    }
}
