//! Rate models shared by the simulated devices.
//!
//! Two building blocks:
//!
//! * [`FifoServer`] — a virtual-clock model of a FIFO queue drained at a
//!   fixed service rate with a bounded backlog. This is exact for
//!   deterministic service and is how we model the OFA's Packet-In path,
//!   the rule-insertion pipeline, and link transmission without per-packet
//!   timer events.
//! * [`Ewma`] — exponentially weighted moving average of an event rate,
//!   used where a device's behaviour depends on the *offered* rate (the
//!   Pica8 rule-insertion success curve of Fig. 9).

use crate::time::{SimDuration, SimTime};

/// Admission result from a [`FifoServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The job was queued and will complete at the given time.
    Accepted {
        /// Completion (departure) time of the job.
        departs_at: SimTime,
    },
    /// The backlog bound was exceeded; the job is dropped.
    Rejected,
}

impl Admission {
    /// True if the job was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Admission::Accepted { .. })
    }

    /// Departure time if accepted.
    pub fn departure(&self) -> Option<SimTime> {
        match self {
            Admission::Accepted { departs_at } => Some(*departs_at),
            Admission::Rejected => None,
        }
    }
}

/// A work-conserving FIFO server with deterministic service times and a
/// bounded queue, modelled with a virtual clock.
///
/// `offer(now, service_time)` computes the job's departure were it queued
/// now; if the implied queue *length* would exceed `max_queue`, the job is
/// rejected instead. Because service is FIFO and deterministic, tracking
/// only the virtual "server free at" time plus departure times of queued
/// jobs reproduces exactly what a per-event simulation of the queue would.
#[derive(Debug, Clone)]
pub struct FifoServer {
    /// Time at which the server finishes all currently accepted work.
    busy_until: SimTime,
    /// Departure times of jobs accepted but not yet departed.
    in_flight: std::collections::VecDeque<SimTime>,
    /// Maximum number of queued-or-in-service jobs.
    max_queue: usize,
    accepted: u64,
    rejected: u64,
}

impl FifoServer {
    /// A server with the given queue bound (jobs, including the one in
    /// service).
    pub fn new(max_queue: usize) -> Self {
        assert!(max_queue > 0, "queue must hold at least one job");
        FifoServer {
            busy_until: SimTime::ZERO,
            in_flight: std::collections::VecDeque::new(),
            max_queue,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Convenience: a server draining `rate_per_sec` uniform jobs/second.
    /// Returns the per-job service time to pass to [`FifoServer::offer`].
    pub fn service_time(rate_per_sec: f64) -> SimDuration {
        assert!(rate_per_sec > 0.0, "service rate must be positive");
        SimDuration::from_secs_f64(1.0 / rate_per_sec)
    }

    fn purge(&mut self, now: SimTime) {
        while let Some(&d) = self.in_flight.front() {
            if d <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Offer a job needing `service_time` of server time at `now`.
    pub fn offer(&mut self, now: SimTime, service_time: SimDuration) -> Admission {
        self.purge(now);
        if self.in_flight.len() >= self.max_queue {
            self.rejected += 1;
            return Admission::Rejected;
        }
        let start = self.busy_until.max(now);
        let departs_at = start + service_time;
        self.busy_until = departs_at;
        self.in_flight.push_back(departs_at);
        self.accepted += 1;
        Admission::Accepted { departs_at }
    }

    /// Current backlog (jobs queued or in service) at `now`.
    pub fn backlog(&mut self, now: SimTime) -> usize {
        self.purge(now);
        self.in_flight.len()
    }

    /// Queueing + service delay a job offered at `now` would experience,
    /// ignoring the queue bound.
    pub fn delay_if_offered(&self, now: SimTime, service_time: SimDuration) -> SimDuration {
        let start = self.busy_until.max(now);
        (start + service_time).duration_since(now)
    }

    /// Jobs accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Jobs rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// True if the server is idle at `now`.
    pub fn is_idle(&mut self, now: SimTime) -> bool {
        self.backlog(now) == 0
    }
}

/// Exponentially weighted moving average of an event *rate* (events/sec).
///
/// Each `observe(now)` call counts one event; the estimate decays with time
/// constant `tau`. The estimator is exact for Poisson-ish streams and reacts
/// within a few `tau` to rate steps, which is what we need to drive the
/// offered-rate-dependent OFA behaviours.
#[derive(Debug, Clone)]
pub struct Ewma {
    tau: f64,
    rate: f64,
    last: Option<SimTime>,
}

impl Ewma {
    /// An estimator with time constant `tau`.
    pub fn new(tau: SimDuration) -> Self {
        assert!(tau > SimDuration::ZERO, "tau must be positive");
        Ewma {
            tau: tau.as_secs_f64(),
            rate: 0.0,
            last: None,
        }
    }

    /// Record one event at `now` and return the updated rate estimate.
    pub fn observe(&mut self, now: SimTime) -> f64 {
        match self.last {
            None => {
                // First event: seed with a neutral small estimate.
                self.rate = 1.0 / self.tau;
            }
            Some(prev) => {
                let dt = now.duration_since(prev).as_secs_f64();
                if dt <= 0.0 {
                    // Simultaneous events: instantaneous bump.
                    self.rate += 1.0 / self.tau;
                } else {
                    let w = (-dt / self.tau).exp();
                    // Standard EWMA rate estimator: blend 1/dt instantaneous
                    // rate with the running estimate.
                    self.rate = w * self.rate + (1.0 - w) / dt;
                }
            }
        }
        self.last = Some(now);
        self.rate
    }

    /// The rate estimate decayed to `now` without recording an event.
    pub fn value(&self, now: SimTime) -> f64 {
        match self.last {
            None => 0.0,
            Some(prev) => {
                let dt = now.duration_since(prev).as_secs_f64();
                self.rate * (-dt / self.tau).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_departures_are_spaced_by_service_time() {
        let mut s = FifoServer::new(100);
        let st = FifoServer::service_time(10.0); // 100 ms per job
        let a = s.offer(SimTime::ZERO, st).departure().unwrap();
        let b = s.offer(SimTime::ZERO, st).departure().unwrap();
        assert_eq!(a, SimTime::from_millis(100));
        assert_eq!(b, SimTime::from_millis(200));
    }

    #[test]
    fn fifo_idle_server_starts_immediately() {
        let mut s = FifoServer::new(10);
        let st = SimDuration::from_millis(10);
        let d = s.offer(SimTime::from_secs(5), st).departure().unwrap();
        assert_eq!(d, SimTime::from_secs(5) + st);
    }

    #[test]
    fn fifo_rejects_when_full() {
        let mut s = FifoServer::new(2);
        let st = SimDuration::from_secs(1);
        assert!(s.offer(SimTime::ZERO, st).is_accepted());
        assert!(s.offer(SimTime::ZERO, st).is_accepted());
        assert_eq!(s.offer(SimTime::ZERO, st), Admission::Rejected);
        assert_eq!(s.accepted(), 2);
        assert_eq!(s.rejected(), 1);
    }

    #[test]
    fn fifo_drains_over_time() {
        let mut s = FifoServer::new(2);
        let st = SimDuration::from_secs(1);
        s.offer(SimTime::ZERO, st);
        s.offer(SimTime::ZERO, st);
        // After the first departure there is room again.
        assert!(s.offer(SimTime::from_millis(1500), st).is_accepted());
        assert_eq!(s.backlog(SimTime::from_millis(1500)), 2);
        assert!(s.is_idle(SimTime::from_secs(10)));
    }

    #[test]
    fn fifo_throughput_saturates_at_service_rate() {
        // Offer 1000 jobs/sec to a 200/sec server for 10 simulated seconds;
        // accepted throughput must be ~200/sec plus the queue capacity.
        let mut s = FifoServer::new(50);
        let st = FifoServer::service_time(200.0);
        let mut accepted = 0u64;
        for i in 0..10_000 {
            let now = SimTime::from_nanos(i * 1_000_000); // 1 ms apart
            if s.offer(now, st).is_accepted() {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / 10.0;
        assert!(
            (rate - 200.0).abs() < 15.0,
            "accepted rate {rate}/s, expected ~200/s"
        );
    }

    #[test]
    fn fifo_underload_accepts_everything() {
        let mut s = FifoServer::new(10);
        let st = FifoServer::service_time(1000.0);
        for i in 0..1000 {
            // 100 jobs/sec offered to a 1000/sec server.
            let now = SimTime::from_nanos(i * 10_000_000);
            assert!(s.offer(now, st).is_accepted());
        }
        assert_eq!(s.rejected(), 0);
    }

    #[test]
    fn delay_if_offered_reflects_backlog() {
        let mut s = FifoServer::new(100);
        let st = SimDuration::from_secs(1);
        s.offer(SimTime::ZERO, st);
        s.offer(SimTime::ZERO, st);
        let d = s.delay_if_offered(SimTime::ZERO, st);
        assert_eq!(d, SimDuration::from_secs(3));
    }

    #[test]
    fn ewma_converges_to_constant_rate() {
        let mut e = Ewma::new(SimDuration::from_millis(500));
        // 100 events/sec for 5 seconds.
        let mut last = 0.0;
        for i in 0..500 {
            last = e.observe(SimTime::from_nanos(i * 10_000_000));
        }
        assert!((last - 100.0).abs() < 10.0, "ewma={last}");
    }

    #[test]
    fn ewma_decays_without_events() {
        let mut e = Ewma::new(SimDuration::from_millis(100));
        for i in 0..200 {
            e.observe(SimTime::from_nanos(i * 1_000_000));
        }
        let busy = e.value(SimTime::from_millis(200));
        let quiet = e.value(SimTime::from_millis(1200));
        assert!(quiet < busy / 100.0, "busy={busy} quiet={quiet}");
    }

    #[test]
    fn ewma_empty_is_zero() {
        let e = Ewma::new(SimDuration::from_secs(1));
        assert_eq!(e.value(SimTime::from_secs(9)), 0.0);
    }

    proptest! {
        /// Departures from a FIFO server are non-decreasing.
        #[test]
        fn prop_fifo_departures_monotone(
            offsets in proptest::collection::vec(0u64..1_000_000u64, 1..100),
            svc_us in 1u64..10_000,
        ) {
            let mut s = FifoServer::new(usize::MAX >> 1);
            let st = SimDuration::from_micros(svc_us);
            let mut t = 0u64;
            let mut last_dep = SimTime::ZERO;
            for off in offsets {
                t += off;
                if let Admission::Accepted { departs_at } = s.offer(SimTime::from_nanos(t), st) {
                    prop_assert!(departs_at >= last_dep);
                    prop_assert!(departs_at >= SimTime::from_nanos(t));
                    last_dep = departs_at;
                }
            }
        }

        /// Backlog never exceeds the configured bound.
        #[test]
        fn prop_fifo_backlog_bounded(
            offsets in proptest::collection::vec(0u64..100_000u64, 1..200),
            cap in 1usize..16,
        ) {
            let mut s = FifoServer::new(cap);
            let st = SimDuration::from_millis(50);
            let mut t = 0u64;
            for off in offsets {
                t += off;
                let now = SimTime::from_nanos(t);
                s.offer(now, st);
                prop_assert!(s.backlog(now) <= cap);
            }
        }
    }
}
