//! The event queue at the heart of the discrete-event engine.
//!
//! Events are `(SimTime, payload)` pairs ordered by time. Ties are broken by
//! insertion order (a monotonically increasing sequence number), which makes
//! the engine deterministic: two runs that push the same events in the same
//! order pop them in the same order, regardless of payload contents.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — a hierarchical timing wheel, the production queue.
//!   Pushes and pops are O(1) amortized instead of the O(log n) of a binary
//!   heap, and the slot buckets recycle their allocations, so the steady
//!   state allocates nothing.
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   executable specification. Property tests drive both with the same
//!   operation sequences and assert identical `(time, seq, payload)` pop
//!   streams.
//!
//! ## Wheel geometry
//!
//! Four levels of 256 slots. A level-`k` slot spans `2^(8k)` ns: level 0
//! resolves single nanoseconds, level 3 slots span ~16.8 ms, and the whole
//! wheel covers deltas up to `2^32` ns (~4.3 s). Events further out than
//! that land in a sorted *spill* heap and migrate into the wheel as the
//! cursor approaches them. An event is addressed by the 8-bit digit of its
//! timestamp at its level (`(at >> 8k) & 0xff`); when the cursor enters a
//! level-`k > 0` slot's window the slot *cascades* — its events re-place
//! into finer levels — until the due events sit in a level-0 slot, which
//! holds a single timestamp and drains in seq order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Internal heap entry. `Reverse`-style ordering: the *earliest* event is the
/// greatest element so it surfaces at the top of the max-heap.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (time, seq) is "greater" for the max-heap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The reference event queue over a binary heap.
///
/// Functionally identical to [`EventQueue`]; see the module docs. Kept
/// because it is small enough to be obviously correct, which makes it the
/// oracle the timing wheel is property-tested against.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Timestamp of the last popped event; pops are monotone.
    now: SimTime,
    pushed_total: u64,
    popped_total: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            pushed_total: 0,
            popped_total: 0,
        }
    }

    /// Schedule `payload` for time `at` (clamped to the current time).
    pub fn push(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pushed_total += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue went backwards");
        self.now = e.at;
        self.popped_total += 1;
        Some((e.at, e.payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (diagnostic).
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Total events ever popped (diagnostic).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }
}

/// Slots per wheel level (one byte of the timestamp each).
const SLOTS: usize = 256;
/// Wheel levels; level `k` slots span `2^(8k)` ns.
const LEVELS: usize = 4;
/// Deltas at or beyond this go to the spill heap (`2^(8 * LEVELS)` ns).
const HORIZON: u64 = 1 << (8 * LEVELS as u32);

/// A scheduled event inside a wheel bucket.
struct Node<E> {
    at: u64,
    seq: u64,
    payload: E,
}

/// One wheel level: 256 buckets plus an occupancy bitmap for O(1) scans.
struct Level<E> {
    occ: [u64; 4],
    slots: Vec<Vec<Node<E>>>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            occ: [0; 4],
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }

    fn push(&mut self, slot: usize, node: Node<E>) {
        self.occ[slot / 64] |= 1u64 << (slot % 64);
        self.slots[slot].push(node);
    }

    /// First occupied slot at index `>= from`. No wrap-around: an event's
    /// slot digit is never below the cursor's digit at its level (they
    /// share all higher digits and the event is not in the past), so slots
    /// behind the cursor are empty. Slot order is time order per level.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let (w0, b0) = (from / 64, from % 64);
        let masked = self.occ[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        for w in w0 + 1..4 {
            if self.occ[w] != 0 {
                return Some(w * 64 + self.occ[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Take a slot's bucket, clearing its occupancy bit. The caller returns
    /// the emptied `Vec` via [`Level::restore`] so its capacity is reused.
    fn take(&mut self, slot: usize) -> Vec<Node<E>> {
        self.occ[slot / 64] &= !(1u64 << (slot % 64));
        std::mem::take(&mut self.slots[slot])
    }

    fn restore(&mut self, slot: usize, mut bucket: Vec<Node<E>>) {
        debug_assert!(self.slots[slot].is_empty());
        bucket.clear();
        self.slots[slot] = bucket;
    }
}

/// A deterministic future-event list (hierarchical timing wheel).
///
/// ```
/// use scotch_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// q.push(SimTime::from_secs(1), "sooner-but-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    levels: Vec<Level<E>>,
    /// Events beyond the wheel horizon, ordered by `(at, seq)`.
    spill: BinaryHeap<Entry<E>>,
    /// The drained due bucket: events at `current_at`, in seq order.
    current: VecDeque<(u64, E)>,
    current_at: SimTime,
    /// The wheel's position, in ns. Invariants: `now <= cursor`, and every
    /// event in the wheel or spill has `at >= cursor`.
    cursor: u64,
    pending: usize,
    seq: u64,
    /// Timestamp of the last popped event; pops are monotone.
    now: SimTime,
    pushed_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            spill: BinaryHeap::new(),
            current: VecDeque::new(),
            current_at: SimTime::ZERO,
            cursor: 0,
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            pushed_total: 0,
            popped_total: 0,
        }
    }

    /// Schedule `payload` for time `at`.
    ///
    /// Scheduling in the past is a logic error in a DES; the event is clamped
    /// to the current time instead of time-travelling, which keeps the pop
    /// stream monotone.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pushed_total += 1;
        self.pending += 1;
        self.place(at.0, seq, payload);
    }

    /// Route an event to its wheel level, or to the spill heap.
    ///
    /// The level is the position of the highest digit (base 256) in which
    /// `at` differs from the cursor. That guarantees the target slot is
    /// strictly ahead of the cursor's slot at that level (equal higher
    /// digits, larger level digit), so cascades always re-place into finer
    /// levels and terminate. Events whose top four digits differ from the
    /// cursor's don't fit the wheel and go to the spill heap — since they
    /// exceed the cursor in a higher digit, they sort after every wheel
    /// event.
    fn place(&mut self, at: u64, seq: u64, payload: E) {
        debug_assert!(at >= self.cursor);
        let diff = at ^ self.cursor;
        if diff >= HORIZON {
            self.spill.push(Entry {
                at: SimTime(at),
                seq,
                payload,
            });
            return;
        }
        let level = (63 - (diff | 1).leading_zeros() as usize) / 8;
        let slot = ((at >> (8 * level)) & 0xff) as usize;
        self.levels[level].push(slot, Node { at, seq, payload });
    }

    /// Absolute start of the part of `(level, slot)`'s window at or after
    /// the cursor. `slot` is at or ahead of the cursor's index (see
    /// [`Level::next_occupied`]).
    fn window_start(&self, level: usize, slot: usize) -> u64 {
        let shift = 8 * level as u32;
        let idx = (self.cursor >> shift) & 0xff;
        ((self.cursor >> shift) - idx + slot as u64) << shift
    }

    /// Move spill events that now fit the wheel horizon into the wheel.
    fn migrate_spill(&mut self) {
        while let Some(e) = self.spill.peek() {
            if (e.at.0 ^ self.cursor) >= HORIZON {
                break;
            }
            let e = self.spill.pop().unwrap();
            self.place(e.at.0, e.seq, e.payload);
        }
    }

    /// Advance the wheel until the next due bucket is drained into
    /// `current`. Returns `None` when no events are pending anywhere.
    ///
    /// Spill migration is *lazy*: every spill entry lies in a later
    /// `2^32` ns block than the cursor (that is what put it in the spill),
    /// and every wheel event shares the cursor's block, so the spill head
    /// is always later than every wheel event — and the cursor cannot enter
    /// the spill's block while the wheel still holds events. The spill is
    /// therefore consulted only when the wheel drains completely, and then
    /// its whole due block migrates in one batch through the ordinary
    /// per-level cascade, instead of paying a heap peek on every refill.
    fn refill(&mut self) -> Option<()> {
        debug_assert!(self.current.is_empty());
        loop {
            // Candidate: the minimal window start over each level's first
            // occupied slot. Ties prefer the coarser level so its window
            // cascades before a finer bucket at the same time drains.
            let mut best: Option<(u64, usize, usize)> = None;
            for (k, level) in self.levels.iter().enumerate() {
                let idx = ((self.cursor >> (8 * k as u32)) & 0xff) as usize;
                if let Some(s) = level.next_occupied(idx) {
                    let bound = self.window_start(k, s).max(self.cursor);
                    let better = match best {
                        None => true,
                        Some((bb, bk, _)) => bound < bb || (bound == bb && k > bk),
                    };
                    if better {
                        best = Some((bound, k, s));
                    }
                }
            }
            let Some((bound, k, s)) = best else {
                // Wheel empty: jump to the spill's earliest event (if any)
                // and batch-migrate everything in its block. Entries land
                // via `place`, cascading level by level as usual.
                let jump = self.spill.peek()?.at.0;
                debug_assert!(jump >= self.cursor);
                self.cursor = jump;
                self.migrate_spill();
                continue;
            };
            self.cursor = bound;
            let mut bucket = self.levels[k].take(s);
            if k == 0 {
                // A level-0 slot holds a single timestamp; seq order
                // restores global FIFO across direct pushes, cascades and
                // spill migrations.
                bucket.sort_unstable_by_key(|n| n.seq);
                self.current_at = SimTime(bound);
                for n in bucket.drain(..) {
                    debug_assert!(n.at == bound);
                    self.current.push_back((n.seq, n.payload));
                }
                self.levels[0].restore(s, bucket);
                return Some(());
            }
            // Cascade: re-place the window's events against the advanced
            // cursor; they land in strictly finer levels.
            for n in bucket.drain(..) {
                self.place(n.at, n.seq, n.payload);
            }
            self.levels[k].restore(s, bucket);
        }
    }

    /// Remove and return the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() {
            self.refill()?;
        }
        let (_, payload) = self.current.pop_front().unwrap();
        let at = self.current_at;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.popped_total += 1;
        self.pending -= 1;
        Some((at, payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.current.is_empty() {
            return Some(self.current_at);
        }
        let mut min: Option<u64> = None;
        for (k, level) in self.levels.iter().enumerate() {
            let idx = ((self.cursor >> (8 * k as u32)) & 0xff) as usize;
            if let Some(s) = level.next_occupied(idx) {
                // Ring order is time order per level, so the first occupied
                // slot's earliest entry is the level's minimum.
                let m = level.slots[s].iter().map(|n| n.at).min().unwrap();
                min = Some(min.map_or(m, |v: u64| v.min(m)));
            }
        }
        if let Some(e) = self.spill.peek() {
            min = Some(min.map_or(e.at.0, |v| v.min(e.at.0)));
        }
        min.map(SimTime)
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events ever pushed (diagnostic).
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Total events ever popped (diagnostic).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
        // Scheduling "in the past" relative to the popped event.
        q.push(SimTime::from_secs(1), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(e, "late");
    }

    #[test]
    fn counters_track_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.pushed_total(), 2);
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_events_spill_and_return() {
        // Beyond the 2^32 ns wheel horizon.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(8), "far");
        q.push(SimTime::from_secs(1), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(8), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn spill_only_queue_jumps_cursor() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), 1);
        q.push(SimTime::from_secs(100), 2);
        q.push(SimTime::from_secs(200), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(100)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(100), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(100), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(200), 3)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(4), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(q.now() + SimDuration::from_secs(1), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    proptest! {
        /// Pop order is always non-decreasing in time, regardless of push order.
        #[test]
        fn prop_pop_times_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Same-timestamp events pop in push order (stability).
        #[test]
        fn prop_stable_at_equal_times(n in 1usize..300) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1);
            for i in 0..n {
                q.push(t, i);
            }
            let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
        }

        /// Determinism: two queues fed the same sequence produce identical streams.
        #[test]
        fn prop_determinism(times in proptest::collection::vec(0u64..10_000, 1..100)) {
            let build = || {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(*t), i);
                }
                std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
            };
            prop_assert_eq!(build(), build());
        }

        /// The wheel's pop stream is identical to the heap oracle's under
        /// random push/pop interleavings: same `(time, payload)` pairs, same
        /// clamping of past events, same `peek_time`. Timestamps span far
        /// past the wheel horizon so the spill heap is exercised, and are
        /// coarsened so same-timestamp collisions are common.
        #[test]
        fn prop_wheel_matches_heap(
            ops in proptest::collection::vec((0u8..4, 0u64..6_000_000_000), 1..300),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            for (i, (op, t)) in ops.iter().enumerate() {
                if *op == 3 {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                } else {
                    // Coarsen to 1 ms grid for timestamp collisions.
                    let at = SimTime::from_nanos(t / 1_000_000 * 1_000_000);
                    wheel.push(at, i);
                    heap.push(at, i);
                }
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.len(), heap.len());
                prop_assert_eq!(wheel.now(), heap.now());
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.pushed_total(), heap.pushed_total());
            prop_assert_eq!(wheel.popped_total(), heap.popped_total());
        }

        /// Spill-heavy traffic: timestamps span dozens of 2^32 ns wheel
        /// blocks, so most pushes land in the spill heap and the lazy
        /// block-batch migration path runs many times, interleaved with
        /// pops and with near-term pushes that re-populate the wheel after
        /// each block jump. The wheel must still match the heap oracle
        /// exactly — including `peek_time` while events sit unmigrated in
        /// the spill.
        #[test]
        fn prop_wheel_matches_heap_spill_heavy(
            ops in proptest::collection::vec((0u8..5, 0u64..64), 1..300),
        ) {
            const BLOCK: u64 = 1 << 32;
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            for (i, (op, t)) in ops.iter().enumerate() {
                match op {
                    // Pops are less frequent than pushes so the spill
                    // accumulates entries across many far blocks.
                    4 => { prop_assert_eq!(wheel.pop(), heap.pop()); }
                    // Far pushes: a whole block per unit of `t`, plus a
                    // small in-block offset, so successive block jumps
                    // find several co-resident spill entries to batch.
                    0 | 1 => {
                        let at = SimTime::from_nanos(t * BLOCK + (i as u64 % 3) * (BLOCK / 2));
                        wheel.push(at, i);
                        heap.push(at, i);
                    }
                    // Near pushes: clamp-to-now keeps the wheel non-empty
                    // between block jumps.
                    _ => {
                        let at = wheel.now() + SimDuration::from_nanos(*t);
                        wheel.push(at, i);
                        heap.push(at, i);
                    }
                }
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.len(), heap.len());
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.popped_total(), heap.popped_total());
        }

        /// Dense nanosecond-scale traffic (every level-0 path): the wheel
        /// matches the oracle with many same-bucket and adjacent-bucket
        /// events, including pushes that clamp to `now` mid-drain.
        #[test]
        fn prop_wheel_matches_heap_dense(
            ops in proptest::collection::vec((0u8..3, 0u64..4_096), 1..300),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            for (i, (op, t)) in ops.iter().enumerate() {
                if *op == 2 {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                } else {
                    let at = SimTime::from_nanos(*t);
                    wheel.push(at, i);
                    heap.push(at, i);
                }
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
