//! The event queue at the heart of the discrete-event engine.
//!
//! Events are `(SimTime, payload)` pairs ordered by time. Ties are broken by
//! insertion order (a monotonically increasing sequence number), which makes
//! the engine deterministic: two runs that push the same events in the same
//! order pop them in the same order, regardless of payload contents.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry. `Reverse`-style ordering: the *earliest* event is the
/// greatest element so it surfaces at the top of the max-heap.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (time, seq) is "greater" for the max-heap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use scotch_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// q.push(SimTime::from_secs(1), "sooner-but-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Timestamp of the last popped event; pops are monotone.
    now: SimTime,
    pushed_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            pushed_total: 0,
            popped_total: 0,
        }
    }

    /// Schedule `payload` for time `at`.
    ///
    /// Scheduling in the past is a logic error in a DES; the event is clamped
    /// to the current time instead of time-travelling, which keeps the pop
    /// stream monotone.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pushed_total += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue went backwards");
        self.now = e.at;
        self.popped_total += 1;
        Some((e.at, e.payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (diagnostic).
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Total events ever popped (diagnostic).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
        // Scheduling "in the past" relative to the popped event.
        q.push(SimTime::from_secs(1), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(e, "late");
    }

    #[test]
    fn counters_track_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.pushed_total(), 2);
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// Pop order is always non-decreasing in time, regardless of push order.
        #[test]
        fn prop_pop_times_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Same-timestamp events pop in push order (stability).
        #[test]
        fn prop_stable_at_equal_times(n in 1usize..300) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1);
            for i in 0..n {
                q.push(t, i);
            }
            let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
        }

        /// Determinism: two queues fed the same sequence produce identical streams.
        #[test]
        fn prop_determinism(times in proptest::collection::vec(0u64..10_000, 1..100)) {
            let build = || {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(*t), i);
                }
                std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
            };
            prop_assert_eq!(build(), build());
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(4), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(q.now() + SimDuration::from_secs(1), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}
