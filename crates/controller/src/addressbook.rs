//! The controller's global view of host placement.

use scotch_net::{IpAddr, NodeId, PortId, Topology};
use scotch_sim::FxHashMap;

/// Host attachment: which node a host is, and where it plugs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attachment {
    /// The host's own node.
    pub host: NodeId,
    /// The switch (or vSwitch) the host hangs off.
    pub switch: NodeId,
    /// The switch-side port the host is wired to.
    pub switch_port: PortId,
}

/// IP → host placement directory.
#[derive(Debug, Clone, Default)]
pub struct AddressBook {
    by_ip: FxHashMap<IpAddr, Attachment>,
    by_host: FxHashMap<NodeId, IpAddr>,
}

impl AddressBook {
    /// An empty book.
    pub fn new() -> Self {
        AddressBook::default()
    }

    /// Register a host with address `ip` attached to `switch`. The
    /// switch-side port is discovered from the topology.
    ///
    /// Panics if `host` and `switch` are not adjacent — that is a test
    /// wiring bug, not a runtime condition.
    pub fn register(&mut self, topo: &Topology, ip: IpAddr, host: NodeId, switch: NodeId) {
        let switch_port = topo
            .port_towards(switch, host)
            .expect("host must be adjacent to its switch");
        self.by_ip.insert(
            ip,
            Attachment {
                host,
                switch,
                switch_port,
            },
        );
        self.by_host.insert(host, ip);
    }

    /// Look up where an address lives.
    pub fn locate(&self, ip: IpAddr) -> Option<Attachment> {
        self.by_ip.get(&ip).copied()
    }

    /// The address of a host node.
    pub fn address_of(&self, host: NodeId) -> Option<IpAddr> {
        self.by_host.get(&host).copied()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.by_ip.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }

    /// Iterate over all registered (ip, attachment) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&IpAddr, &Attachment)> {
        self.by_ip.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{LinkSpec, NodeKind};

    #[test]
    fn register_and_locate() {
        let mut topo = Topology::new();
        let h = topo.add_node(NodeKind::Host, "h");
        let s = topo.add_node(NodeKind::PhysicalSwitch, "s");
        topo.add_duplex_link(h, s, LinkSpec::gig());
        let mut book = AddressBook::new();
        let ip = IpAddr::new(10, 0, 0, 1);
        book.register(&topo, ip, h, s);

        let att = book.locate(ip).unwrap();
        assert_eq!(att.host, h);
        assert_eq!(att.switch, s);
        assert_eq!(att.switch_port, topo.port_towards(s, h).unwrap());
        assert_eq!(book.address_of(h), Some(ip));
        assert_eq!(book.len(), 1);
        assert!(!book.is_empty());
    }

    #[test]
    fn unknown_lookups_are_none() {
        let book = AddressBook::new();
        assert!(book.locate(IpAddr::new(1, 2, 3, 4)).is_none());
        assert!(book.address_of(NodeId(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn non_adjacent_registration_panics() {
        let mut topo = Topology::new();
        let h = topo.add_node(NodeKind::Host, "h");
        let s = topo.add_node(NodeKind::PhysicalSwitch, "s");
        let mut book = AddressBook::new();
        book.register(&topo, IpAddr::new(10, 0, 0, 1), h, s);
    }
}
