//! The baseline reactive controller (no Scotch).
//!
//! Equivalent to the plain Ryu behaviour in the paper's §3 experiments:
//! every table-miss Packet-In triggers path computation, per-flow rule
//! installation along the path (match on source+destination IP, §3.2,
//! 10-second timeout, §6.1) and a Packet-Out returning the first packet to
//! the data plane.

use crate::addressbook::AddressBook;
use crate::flowdb::{FlowInfoDatabase, FlowPath};
use crate::monitor::PacketInMonitor;
use crate::Command;
use scotch_net::{NodeId, NodeKind, Packet, PortId, Topology};
use scotch_openflow::{Action, ControllerToSwitch, FlowEntry, FlowModCommand, Match, TableId};
use scotch_sim::{SimDuration, SimTime};

/// Priority of per-flow physical-path rules. Must exceed Scotch's overlay
/// rules (the paper's red-over-green priority ordering, Fig. 8).
pub const PHYSICAL_RULE_PRIORITY: u16 = 100;

/// Baseline behaviour knobs.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Idle timeout on installed per-flow rules (the paper uses 10 s in
    /// §6.1).
    pub rule_idle_timeout: SimDuration,
    /// Also install the reverse-direction rules at admission (needed for
    /// request/response workloads; the paper's DDoS experiments are
    /// one-directional).
    pub install_reverse: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            rule_idle_timeout: SimDuration::from_secs(10),
            install_reverse: false,
        }
    }
}

/// Counters for the baseline controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Packet-Ins processed.
    pub packet_ins: u64,
    /// Flows admitted onto the physical network.
    pub admitted: u64,
    /// Packet-Ins for destinations the controller cannot place.
    pub unroutable: u64,
}

/// A plain reactive controller.
#[derive(Debug, Clone)]
pub struct BaselineController {
    /// Behaviour configuration.
    pub config: BaselineConfig,
    /// Host directory.
    pub book: AddressBook,
    /// Flow provenance records.
    pub flowdb: FlowInfoDatabase,
    /// Packet-In rate monitoring.
    pub monitor: PacketInMonitor,
    stats: BaselineStats,
    cookie_seq: u64,
}

impl BaselineController {
    /// A controller over the given host directory.
    pub fn new(book: AddressBook, config: BaselineConfig) -> Self {
        BaselineController {
            config,
            book,
            flowdb: FlowInfoDatabase::new(),
            monitor: PacketInMonitor::new(SimDuration::from_secs(1)),
            stats: BaselineStats::default(),
            cookie_seq: 1,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BaselineStats {
        self.stats
    }

    /// Allocate a fresh rule cookie.
    pub fn next_cookie(&mut self) -> u64 {
        let c = self.cookie_seq;
        self.cookie_seq += 1;
        c
    }

    /// Handle a table-miss Packet-In from `from_switch`.
    pub fn handle_packet_in(
        &mut self,
        now: SimTime,
        topo: &Topology,
        from_switch: NodeId,
        in_port: PortId,
        packet: Packet,
    ) -> Vec<Command> {
        self.stats.packet_ins += 1;
        self.monitor.record(from_switch, now);

        let Some(att) = self.book.locate(packet.key.dst) else {
            self.stats.unroutable += 1;
            return Vec::new();
        };
        // Prefer the full host-to-host path (so reverse rules reach the
        // first-hop switch); spoofed/unknown sources fall back to a path
        // from the punting switch.
        let path = self
            .book
            .locate(packet.key.src)
            .filter(|src_att| src_att.switch == from_switch)
            .and_then(|src_att| topo.shortest_path(src_att.host, att.host))
            .or_else(|| topo.shortest_path(from_switch, att.host));
        let Some(path) = path else {
            self.stats.unroutable += 1;
            return Vec::new();
        };

        let cookie = self.next_cookie();
        let mut commands = plan_flow_rules(
            topo,
            &path,
            Match::src_dst(packet.key.src, packet.key.dst),
            cookie,
            self.config.rule_idle_timeout,
        );
        if self.config.install_reverse {
            let mut rev = path.clone();
            rev.reverse();
            commands.extend(plan_flow_rules(
                topo,
                &rev,
                Match::src_dst(packet.key.dst, packet.key.src),
                cookie,
                self.config.rule_idle_timeout,
            ));
        }

        // Return the buffered first packet to the data plane at the
        // punting switch.
        if let Some(pos) = path.iter().position(|n| *n == from_switch) {
            if let Some(next) = path.get(pos + 1) {
                if let Some(out_port) = topo.port_towards(from_switch, *next) {
                    commands.push(Command::new(
                        from_switch,
                        ControllerToSwitch::PacketOut { packet, out_port },
                    ));
                }
            }
        }

        self.flowdb
            .record(packet.key, from_switch, in_port, now, FlowPath::Physical);
        self.stats.admitted += 1;
        commands
    }
}

/// Plan the per-switch FlowMods that pin `matcher` along `path`.
///
/// Rules are emitted for every switch-kind node on the path; middlebox and
/// host nodes forward implicitly (a middlebox's output port is its other
/// port; hosts consume). When a switch appears more than once on the path
/// (middlebox hairpin, §5.4: traffic leaves to the middlebox and comes
/// back), each occurrence's rule additionally matches the arrival port and
/// gets a higher priority, so the hairpin cannot loop. Shared by the
/// baseline controller and Scotch's migration planner (§5.3) — migration
/// reverses the emission order so the first-hop rule lands last.
pub fn plan_flow_rules(
    topo: &Topology,
    path: &[NodeId],
    matcher: Match,
    cookie: u64,
    idle_timeout: SimDuration,
) -> Vec<Command> {
    let mut commands = Vec::new();
    let mut seen = std::collections::HashMap::new();
    for (i, node) in path.iter().enumerate() {
        if !matches!(
            topo.kind(*node),
            NodeKind::PhysicalSwitch | NodeKind::VSwitch
        ) {
            continue;
        }
        let Some(next) = path.get(i + 1) else {
            continue;
        };
        let Some(out_port) = topo.port_towards(*node, *next) else {
            continue;
        };
        let occurrence = *seen.entry(*node).and_modify(|c| *c += 1).or_insert(0u16);
        let mut m = matcher;
        if occurrence > 0 {
            // Hairpin re-entry: disambiguate by arrival port. A middlebox
            // is entered on the switch's first link to it and returns on
            // the last (the middlebox exits on its other port).
            if let Some(prev) = i.checked_sub(1).map(|j| path[j]) {
                if let Some(in_port) = topo.ports_towards(*node, prev).last().copied() {
                    m = m.with_in_port(in_port);
                }
            }
        }
        let entry = FlowEntry::apply(
            m,
            PHYSICAL_RULE_PRIORITY + occurrence,
            vec![Action::Output(out_port)],
        )
        .with_cookie(cookie)
        .with_idle_timeout(idle_timeout);
        commands.push(Command::new(
            *node,
            ControllerToSwitch::FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add(entry),
            },
        ));
    }
    commands
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{FlowId, FlowKey, IpAddr, LinkSpec};

    /// client - s1 - s2 - server
    fn setup() -> (Topology, AddressBook, NodeId, NodeId, NodeId, NodeId) {
        let mut topo = Topology::new();
        let client = topo.add_node(NodeKind::Host, "client");
        let s1 = topo.add_node(NodeKind::PhysicalSwitch, "s1");
        let s2 = topo.add_node(NodeKind::PhysicalSwitch, "s2");
        let server = topo.add_node(NodeKind::Host, "server");
        topo.add_duplex_link(client, s1, LinkSpec::gig());
        topo.add_duplex_link(s1, s2, LinkSpec::tengig());
        topo.add_duplex_link(s2, server, LinkSpec::gig());
        let mut book = AddressBook::new();
        book.register(&topo, IpAddr::new(10, 0, 0, 1), client, s1);
        book.register(&topo, IpAddr::new(10, 0, 0, 2), server, s2);
        (topo, book, client, s1, s2, server)
    }

    fn pkt() -> Packet {
        Packet::flow_start(
            FlowKey::tcp(IpAddr::new(10, 0, 0, 1), 1234, IpAddr::new(10, 0, 0, 2), 80),
            FlowId(1),
            SimTime::ZERO,
        )
    }

    #[test]
    fn packet_in_installs_path_and_packets_out() {
        let (topo, book, _c, s1, s2, _srv) = setup();
        let mut ctl = BaselineController::new(book, BaselineConfig::default());
        let in_port = topo.port_towards(s1, NodeId(0)).unwrap();
        let cmds = ctl.handle_packet_in(SimTime::ZERO, &topo, s1, in_port, pkt());
        // Two FlowMods (s1, s2) + one PacketOut at s1.
        let flowmods: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(c.msg, ControllerToSwitch::FlowMod { .. }))
            .collect();
        let packet_outs: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(c.msg, ControllerToSwitch::PacketOut { .. }))
            .collect();
        assert_eq!(flowmods.len(), 2);
        assert_eq!(flowmods[0].to, s1);
        assert_eq!(flowmods[1].to, s2);
        assert_eq!(packet_outs.len(), 1);
        assert_eq!(packet_outs[0].to, s1);
        assert_eq!(ctl.stats().admitted, 1);
        assert_eq!(ctl.flowdb.len(), 1);
    }

    #[test]
    fn reverse_rules_double_the_flowmods() {
        let (topo, book, _c, s1, _s2, _srv) = setup();
        let mut ctl = BaselineController::new(
            book,
            BaselineConfig {
                install_reverse: true,
                ..Default::default()
            },
        );
        let cmds = ctl.handle_packet_in(SimTime::ZERO, &topo, s1, PortId(0), pkt());
        let flowmods = cmds
            .iter()
            .filter(|c| matches!(c.msg, ControllerToSwitch::FlowMod { .. }))
            .count();
        assert_eq!(flowmods, 4);
    }

    #[test]
    fn unknown_destination_is_unroutable() {
        let (topo, book, _c, s1, _s2, _srv) = setup();
        let mut ctl = BaselineController::new(book, BaselineConfig::default());
        let mut p = pkt();
        p.key.dst = IpAddr::new(99, 99, 99, 99);
        let cmds = ctl.handle_packet_in(SimTime::ZERO, &topo, s1, PortId(0), p);
        assert!(cmds.is_empty());
        assert_eq!(ctl.stats().unroutable, 1);
    }

    #[test]
    fn monitor_sees_packet_ins() {
        let (topo, book, _c, s1, _s2, _srv) = setup();
        let mut ctl = BaselineController::new(book, BaselineConfig::default());
        for i in 0..50 {
            let mut p = pkt();
            p.key.sport = 2000 + i;
            ctl.handle_packet_in(SimTime::from_millis(i as u64 * 10), &topo, s1, PortId(0), p);
        }
        assert_eq!(ctl.monitor.rate(s1, SimTime::from_millis(500)), 50.0);
    }

    #[test]
    fn plan_flow_rules_emits_correct_ports() {
        let (topo, _book, client, s1, s2, server) = setup();
        let path = vec![client, s1, s2, server];
        let cmds = plan_flow_rules(&topo, &path, Match::ANY, 7, SimDuration::from_secs(10));
        assert_eq!(cmds.len(), 2);
        for c in &cmds {
            let ControllerToSwitch::FlowMod {
                command: FlowModCommand::Add(e),
                ..
            } = &c.msg
            else {
                panic!()
            };
            assert_eq!(e.cookie, 7);
            let Action::Output(p) = e.first_output().unwrap() else {
                panic!()
            };
            // Port leads to the next node on the path.
            let pos = path.iter().position(|n| *n == c.to).unwrap();
            assert_eq!(topo.port_towards(c.to, path[pos + 1]).unwrap(), p);
        }
    }

    #[test]
    fn cookies_are_unique_per_flow() {
        let (topo, book, _c, s1, _s2, _srv) = setup();
        let mut ctl = BaselineController::new(book, BaselineConfig::default());
        let c1 = ctl.handle_packet_in(SimTime::ZERO, &topo, s1, PortId(0), pkt());
        let mut p2 = pkt();
        p2.key.sport = 1235;
        let c2 = ctl.handle_packet_in(SimTime::ZERO, &topo, s1, PortId(0), p2);
        let cookie = |cmds: &[Command]| -> u64 {
            cmds.iter()
                .find_map(|c| match &c.msg {
                    ControllerToSwitch::FlowMod {
                        command: FlowModCommand::Add(e),
                        ..
                    } => Some(e.cookie),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(cookie(&c1), cookie(&c2));
    }
}
