//! §5.2's Flow Info Database.
//!
//! "The controller maintains the flow's first-hop physical switch id and
//! the ingress port id at the Flow Info Database. Such information will be
//! used for large flow migration."

use scotch_net::{FlowKey, NodeId, PortId};
use scotch_sim::FxHashMap;
use scotch_sim::SimTime;

/// Where a flow currently runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPath {
    /// Over the physical SDN network (per-flow rules at hardware switches).
    Physical,
    /// Over the Scotch overlay (rules at vSwitches only).
    Overlay,
}

/// Per-flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowInfo {
    /// First-hop physical switch (where the flow enters the SDN network).
    pub first_hop: NodeId,
    /// Ingress port at that switch (recovered from the inner label when the
    /// Packet-In came through the overlay).
    pub ingress_port: PortId,
    /// When the controller first saw the flow.
    pub first_seen: SimTime,
    /// Where the flow is routed right now.
    pub path: FlowPath,
    /// Set once the flow has been migrated overlay → physical (§5.3); a
    /// migrated flow "remains at the physical SDN network for the rest of
    /// time".
    pub migrated: bool,
    /// Last time the controller saw evidence the flow is alive (flow-stats
    /// deltas, duplicate Packet-Ins). Used by withdrawal to pin only flows
    /// that are still running (§5.5).
    pub last_active: SimTime,
}

/// The database.
#[derive(Debug, Clone, Default)]
pub struct FlowInfoDatabase {
    flows: FxHashMap<FlowKey, FlowInfo>,
}

impl FlowInfoDatabase {
    /// An empty database.
    pub fn new() -> Self {
        FlowInfoDatabase::default()
    }

    /// An empty database pre-sized for about `flows` concurrent flows.
    ///
    /// The database only holds *active* flows (entries are removed when
    /// their rules time out), so the right hint is
    /// `expected arrival rate × rule idle timeout`, not total flows over a
    /// run. Pre-sizing avoids rehash-and-move churn while a DDoS surge
    /// grows the table.
    pub fn with_capacity(flows: usize) -> Self {
        FlowInfoDatabase {
            flows: FxHashMap::with_capacity_and_hasher(flows, Default::default()),
        }
    }

    /// Reserve room for at least `additional` more flows.
    pub fn reserve(&mut self, additional: usize) {
        self.flows.reserve(additional);
    }

    /// Allocated capacity (≥ len).
    pub fn capacity(&self) -> usize {
        self.flows.capacity()
    }

    /// Record a newly seen flow. Returns `true` if it was genuinely new.
    /// An existing record is left untouched (retransmitted first packets
    /// must not reset provenance).
    pub fn record(
        &mut self,
        key: FlowKey,
        first_hop: NodeId,
        ingress_port: PortId,
        now: SimTime,
        path: FlowPath,
    ) -> bool {
        match self.flows.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(FlowInfo {
                    first_hop,
                    ingress_port,
                    first_seen: now,
                    path,
                    migrated: false,
                    last_active: now,
                });
                true
            }
        }
    }

    /// Look up a flow.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowInfo> {
        self.flows.get(key)
    }

    /// Record evidence that a flow is still alive.
    pub fn touch(&mut self, key: &FlowKey, now: SimTime) {
        if let Some(f) = self.flows.get_mut(key) {
            if now > f.last_active {
                f.last_active = now;
            }
        }
    }

    /// Mark a flow as migrated to the physical network.
    pub fn mark_migrated(&mut self, key: &FlowKey) -> bool {
        if let Some(f) = self.flows.get_mut(key) {
            f.path = FlowPath::Physical;
            f.migrated = true;
            true
        } else {
            false
        }
    }

    /// Forget a flow (it ended / its rules timed out).
    pub fn remove(&mut self, key: &FlowKey) -> Option<FlowInfo> {
        self.flows.remove(key)
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flows currently on the overlay (candidates for migration and for
    /// §5.5's withdrawal pinning).
    pub fn overlay_flows(&self) -> impl Iterator<Item = (&FlowKey, &FlowInfo)> {
        self.flows
            .iter()
            .filter(|(_, f)| f.path == FlowPath::Overlay)
    }

    /// Flows whose first hop is the given switch.
    pub fn flows_entering_at(&self, switch: NodeId) -> impl Iterator<Item = (&FlowKey, &FlowInfo)> {
        self.flows
            .iter()
            .filter(move |(_, f)| f.first_hop == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_net::{IpAddr, Protocol};

    fn key(n: u16) -> FlowKey {
        FlowKey {
            src: IpAddr::new(1, 0, 0, 1),
            dst: IpAddr::new(2, 0, 0, 2),
            proto: Protocol::Tcp,
            sport: n,
            dport: 80,
        }
    }

    #[test]
    fn with_capacity_presizes() {
        let mut db = FlowInfoDatabase::with_capacity(1000);
        assert!(db.capacity() >= 1000);
        assert!(db.is_empty());
        let before = db.capacity();
        for n in 0..500 {
            db.record(
                key(n),
                NodeId(1),
                PortId(0),
                SimTime::ZERO,
                FlowPath::Overlay,
            );
        }
        // No rehash while filling within the hint.
        assert_eq!(db.capacity(), before);
        db.reserve(5000);
        assert!(db.capacity() >= 5500);
    }

    #[test]
    fn record_is_idempotent() {
        let mut db = FlowInfoDatabase::new();
        assert!(db.record(
            key(1),
            NodeId(5),
            PortId(2),
            SimTime::from_secs(1),
            FlowPath::Overlay
        ));
        // A retransmit must not clobber provenance.
        assert!(!db.record(
            key(1),
            NodeId(9),
            PortId(9),
            SimTime::from_secs(2),
            FlowPath::Physical
        ));
        let f = db.get(&key(1)).unwrap();
        assert_eq!(f.first_hop, NodeId(5));
        assert_eq!(f.ingress_port, PortId(2));
        assert_eq!(f.path, FlowPath::Overlay);
    }

    #[test]
    fn migration_flips_path() {
        let mut db = FlowInfoDatabase::new();
        db.record(
            key(1),
            NodeId(1),
            PortId(0),
            SimTime::ZERO,
            FlowPath::Overlay,
        );
        assert!(db.mark_migrated(&key(1)));
        let f = db.get(&key(1)).unwrap();
        assert_eq!(f.path, FlowPath::Physical);
        assert!(f.migrated);
        assert!(!db.mark_migrated(&key(2)));
    }

    #[test]
    fn overlay_flows_filter() {
        let mut db = FlowInfoDatabase::new();
        db.record(
            key(1),
            NodeId(1),
            PortId(0),
            SimTime::ZERO,
            FlowPath::Overlay,
        );
        db.record(
            key(2),
            NodeId(1),
            PortId(0),
            SimTime::ZERO,
            FlowPath::Physical,
        );
        db.record(
            key(3),
            NodeId(2),
            PortId(1),
            SimTime::ZERO,
            FlowPath::Overlay,
        );
        let overlay: Vec<_> = db.overlay_flows().map(|(k, _)| *k).collect();
        assert_eq!(overlay.len(), 2);
        assert!(!overlay.contains(&key(2)));
    }

    #[test]
    fn flows_entering_at_filters_by_switch() {
        let mut db = FlowInfoDatabase::new();
        db.record(
            key(1),
            NodeId(1),
            PortId(0),
            SimTime::ZERO,
            FlowPath::Overlay,
        );
        db.record(
            key(2),
            NodeId(2),
            PortId(0),
            SimTime::ZERO,
            FlowPath::Overlay,
        );
        assert_eq!(db.flows_entering_at(NodeId(1)).count(), 1);
        assert_eq!(db.flows_entering_at(NodeId(3)).count(), 0);
    }

    #[test]
    fn remove_forgets() {
        let mut db = FlowInfoDatabase::new();
        db.record(
            key(1),
            NodeId(1),
            PortId(0),
            SimTime::ZERO,
            FlowPath::Overlay,
        );
        assert!(db.remove(&key(1)).is_some());
        assert!(db.get(&key(1)).is_none());
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
    }
}
