#![warn(missing_docs)]

//! # scotch-controller
//!
//! The OpenFlow controller runtime the Scotch application sits on. The
//! paper implements Scotch "as an application on the Ryu OpenFlow
//! controller" (§6); this crate is the Ryu-equivalent substrate:
//!
//! * [`addressbook::AddressBook`] — where hosts live (IP → node, host →
//!   attachment switch/port), the global view a controller has;
//! * [`flowdb::FlowInfoDatabase`] — §5.2's "Flow Info Database": per-flow
//!   first-hop physical switch and ingress port, used by large-flow
//!   migration;
//! * [`monitor::PacketInMonitor`] — per-switch Packet-In rate tracking,
//!   the congestion signal for overlay activation/withdrawal;
//! * [`monitor::HeartbeatTracker`] — vSwitch liveness via Echo (§5.6);
//! * [`cluster::ClusterState`] — controller-cluster mastership: N
//!   replicas, per-switch masters and standbys, deterministic failover
//!   with parked-message migration (DESIGN.md §16);
//! * [`baseline::BaselineController`] — a plain reactive controller
//!   (shortest path, rule install along path, PacketOut), the non-Scotch
//!   behaviour measured in Figs. 3, 4, 9, 10.
//!
//! The controller itself is deliberately *not* rate-limited: "a single
//! node multi-threaded controller can handle millions of Packet-In/sec"
//! (§2) — the bottleneck the paper studies, and that we reproduce, is the
//! switch-side control path.

pub mod addressbook;
pub mod baseline;
pub mod cluster;
pub mod flowdb;
pub mod monitor;

pub use addressbook::AddressBook;
pub use baseline::{BaselineConfig, BaselineController};
pub use cluster::{ClusterConfig, ClusterState, MasterView, NO_REPLICA};
pub use flowdb::{FlowInfo, FlowInfoDatabase};
pub use monitor::{HeartbeatTracker, PacketInMonitor};

use scotch_net::NodeId;
use scotch_openflow::ControllerToSwitch;

/// A controller decision: send `msg` to switch `to` (the composition root
/// applies that switch's control-channel latency).
#[derive(Debug, Clone)]
pub struct Command {
    /// Destination switch (physical or vSwitch).
    pub to: NodeId,
    /// The message.
    pub msg: ControllerToSwitch,
}

impl Command {
    /// Convenience constructor.
    pub fn new(to: NodeId, msg: ControllerToSwitch) -> Self {
        Command { to, msg }
    }
}
