//! Controller-cluster mastership: N replicas, per-switch masters, and
//! deterministic failover (DESIGN.md §16).
//!
//! The paper's deployments shard the control plane across controller
//! replicas (following Yazıcı et al., "Controlling a Software-Defined
//! Network via Distributed Controllers"); this module models that cluster
//! *logically*: one [`ClusterState`] tracks which replica masters each
//! switch, which replicas are alive, and the coordination-channel state.
//! The replicas share the flowdb / address book — the shared state's
//! staleness is bounded by the configured sync latency, which is exactly
//! the delay a mastership handoff pays before the new master may act.
//!
//! Determinism rules:
//!
//! * Mastership is a pure function of `(switch id, replica count,
//!   crash/recovery history)` — the default master of switch `s` is
//!   `s % replicas`, standbys follow in rotation, and failover always
//!   picks the *first live standby* in rotation order.
//! * Pending control messages parked during a migration are kept in
//!   per-switch FIFOs inside a `BTreeMap`, so a completed handoff releases
//!   switches in ascending id order and each switch's messages in arrival
//!   order — independent of hash-map iteration order.
//! * The state machine itself never reads a clock; the composition root
//!   (the `scotch` crate's simulation) drives every transition through its
//!   timing wheel, so `(scenario, seed, plan)` replays bit-identically.
//!
//! A cluster of size 1 is never constructed (the simulation keeps
//! `Option<ClusterState>` = `None`), so the single-controller engine is
//! byte-for-byte unchanged.

use std::collections::{BTreeMap, VecDeque};

use scotch_net::NodeId;
use scotch_openflow::SwitchToController;
use scotch_sim::metrics::Histogram;
use scotch_sim::{SimDuration, SimTime};

/// Sentinel replica id meaning "no replica" (orphaned switch, unknown
/// previous master).
pub const NO_REPLICA: u32 = u32::MAX;

/// Static cluster shape: replica count and coordination-channel latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of controller replicas (≥ 2 for an active cluster).
    pub replicas: u32,
    /// One-way state-sync latency of the coordination channel: the delay
    /// between a mastership change being initiated and the new master
    /// holding the switch's full state.
    pub sync_latency: SimDuration,
}

/// Mastership status of one switch.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mastership {
    /// `replica` masters the switch and processes its messages directly.
    Settled(u32),
    /// Mastership is moving to `to`; messages park until `deadline`.
    Migrating {
        /// Previous master ([`NO_REPLICA`] when adopted from orphanhood).
        from: u32,
        /// Target replica.
        to: u32,
        /// When the migration was (first) initiated.
        started: SimTime,
        /// When the handoff is due to complete (sync delay paid, partition
        /// respected). Re-targeting on a second crash pushes this forward.
        deadline: SimTime,
    },
    /// Every replica is dead; messages park until one recovers.
    Orphaned,
}

/// What a caller should do with an inbound switch message right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterView {
    /// Process directly; the replica id is the current master.
    Master(u32),
    /// Park the message: mastership is mid-handoff or orphaned.
    Park,
}

/// One completed per-switch handoff, returned by [`ClusterState::settle`].
#[derive(Debug)]
pub struct Handoff {
    /// The switch whose mastership moved.
    pub switch: NodeId,
    /// Previous master ([`NO_REPLICA`] when adopted from orphanhood).
    pub from: u32,
    /// New master.
    pub to: u32,
    /// When the migration was first initiated.
    pub started: SimTime,
    /// The deadline it had to meet (I6).
    pub deadline: SimTime,
    /// Parked messages released to the new master, in arrival order.
    pub released: Vec<(NodeId, SwitchToController)>,
}

/// Aggregate counters exported as `ctrl.cluster.*` metrics.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Completed mastership handoffs.
    pub handoffs: u64,
    /// Handoffs that settled after their deadline (I6 violations).
    pub handoff_exceeded: u64,
    /// Control messages parked during migrations/orphanhood.
    pub pending_enq: u64,
    /// Parked messages released to a new master.
    pub pending_rel: u64,
    /// Replica crashes injected.
    pub crashes: u64,
    /// Replica recoveries.
    pub recoveries: u64,
    /// Coordination-channel partitions injected.
    pub partitions: u64,
}

/// The cluster: replica liveness, per-switch mastership, parked messages,
/// and the coordination-channel partition window.
#[derive(Debug, Clone)]
pub struct ClusterState {
    config: ClusterConfig,
    alive: Vec<bool>,
    /// Switches whose mastership ever diverged from the static default.
    assignments: BTreeMap<u32, Mastership>,
    /// Per-switch parked messages, drained in ascending switch-id order.
    pending: BTreeMap<u32, VecDeque<(NodeId, SwitchToController)>>,
    /// The coordination channel is partitioned until this instant.
    partition_until: SimTime,
    /// Per-replica decision counts (messages processed as master).
    decisions: Vec<u64>,
    /// Handoff durations (initiation → settle), ns.
    handoff_ns: Histogram,
    stats: ClusterStats,
}

impl ClusterState {
    /// Build a cluster of `config.replicas` live replicas.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.replicas >= 2, "a cluster needs at least 2 replicas");
        ClusterState {
            alive: vec![true; config.replicas as usize],
            assignments: BTreeMap::new(),
            pending: BTreeMap::new(),
            partition_until: SimTime::ZERO,
            decisions: vec![0; config.replicas as usize],
            handoff_ns: Histogram::new(),
            stats: ClusterStats::default(),
            config,
        }
    }

    /// Configured replica count.
    pub fn replicas(&self) -> u32 {
        self.config.replicas
    }

    /// Configured coordination-channel sync latency.
    pub fn sync_latency(&self) -> SimDuration {
        self.config.sync_latency
    }

    /// Replicas currently alive.
    pub fn live_replicas(&self) -> u32 {
        self.alive.iter().filter(|a| **a).count() as u32
    }

    /// True while the coordination channel is partitioned.
    pub fn is_partitioned(&self, now: SimTime) -> bool {
        now < self.partition_until
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Per-replica decision counts.
    pub fn decisions(&self) -> &[u64] {
        &self.decisions
    }

    /// Handoff-duration histogram (ns).
    pub fn handoff_histogram(&self) -> &Histogram {
        &self.handoff_ns
    }

    /// Messages still parked (I5's horizon term).
    pub fn pending_now(&self) -> u64 {
        self.pending.values().map(|q| q.len() as u64).sum()
    }

    /// The default (configuration-time) master of a switch.
    fn default_master(&self, switch: NodeId) -> u32 {
        switch.0 % self.config.replicas
    }

    /// First live replica in the standby rotation starting at `start`.
    fn first_live_from(&self, start: u32) -> Option<u32> {
        let r = self.config.replicas;
        (0..r)
            .map(|i| (start + i) % r)
            .find(|c| self.alive[*c as usize])
    }

    /// Resolve an abstract fault-plan target to a concrete live replica
    /// (index modulo the live set), `None` when every replica is dead.
    pub fn resolve_target(&self, target: u32) -> Option<u32> {
        let live: Vec<u32> = (0..self.config.replicas)
            .filter(|r| self.alive[*r as usize])
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[target as usize % live.len()])
        }
    }

    /// How to treat an inbound message from `switch` right now.
    pub fn master_view(&self, switch: NodeId) -> MasterView {
        match self.assignments.get(&switch.0) {
            Some(Mastership::Settled(m)) => MasterView::Master(*m),
            Some(Mastership::Migrating { .. }) | Some(Mastership::Orphaned) => MasterView::Park,
            None => match self.first_live_from(self.default_master(switch)) {
                Some(m) => MasterView::Master(m),
                None => MasterView::Park,
            },
        }
    }

    /// The replica currently mastering `switch`, for attribution
    /// ([`NO_REPLICA`] while migrating/orphaned).
    pub fn master_of(&self, switch: NodeId) -> u32 {
        match self.master_view(switch) {
            MasterView::Master(m) => m,
            MasterView::Park => NO_REPLICA,
        }
    }

    /// Count one processed message against `replica`'s load.
    pub fn record_decision(&mut self, replica: u32) {
        if let Some(d) = self.decisions.get_mut(replica as usize) {
            *d += 1;
        }
    }

    /// Park an inbound message until `switch`'s mastership settles.
    pub fn park(&mut self, switch: NodeId, from: NodeId, msg: SwitchToController) {
        self.stats.pending_enq += 1;
        self.pending
            .entry(switch.0)
            .or_default()
            .push_back((from, msg));
        // A switch with no explicit assignment parks only when every
        // replica is dead; materialize Orphaned so a later recovery
        // adopts it.
        self.assignments
            .entry(switch.0)
            .or_insert(Mastership::Orphaned);
    }

    /// A handoff initiated at `now` completes once the sync delay has been
    /// paid *after* any active partition heals. Handoffs already in flight
    /// when a partition starts are unaffected (their sync traffic is
    /// already on the wire) — the ordering rule documented in DESIGN.md
    /// §16.
    fn handoff_deadline(&self, now: SimTime) -> SimTime {
        let base = if self.is_partitioned(now) {
            self.partition_until
        } else {
            now
        };
        base + self.config.sync_latency
    }

    /// Crash `replica` at `now`: every switch it masters (or was migrating
    /// toward) re-targets to its first live standby. Returns the number of
    /// switches that entered migration and the deadline at which the
    /// resulting handoffs complete (`None` when no switch moved, or when
    /// every replica is now dead and the affected switches are orphaned).
    ///
    /// `switches` is the full switch universe, in ascending id order.
    pub fn crash(
        &mut self,
        now: SimTime,
        replica: u32,
        switches: &[NodeId],
    ) -> (u32, Option<SimTime>) {
        if !self.alive[replica as usize] {
            return (0, None);
        }
        self.alive[replica as usize] = false;
        self.stats.crashes += 1;
        let mut moved = 0u32;
        let mut deadline = None;
        for &sw in switches {
            let current = self
                .assignments
                .get(&sw.0)
                .copied()
                .unwrap_or(Mastership::Settled(self.default_master(sw)));
            let (affected, from, started) = match current {
                Mastership::Settled(m) if m == replica => (true, m, now),
                // Migration target died mid-handoff: keep the original
                // initiation time (I6 measures first-initiation → settle)
                // but pay a fresh sync delay toward the new target.
                Mastership::Migrating {
                    from, to, started, ..
                } if to == replica => (true, from, started),
                _ => (false, 0, now),
            };
            if !affected {
                continue;
            }
            moved += 1;
            let next = match current {
                Mastership::Settled(_) => {
                    self.first_live_from((replica + 1) % self.config.replicas)
                }
                Mastership::Migrating { to, .. } => {
                    self.first_live_from((to + 1) % self.config.replicas)
                }
                Mastership::Orphaned => None,
            };
            let state = match next {
                Some(to) => {
                    let d = self.handoff_deadline(now);
                    deadline = Some(deadline.map_or(d, |x: SimTime| x.max(d)));
                    Mastership::Migrating {
                        from,
                        to,
                        started,
                        deadline: d,
                    }
                }
                None => Mastership::Orphaned,
            };
            self.assignments.insert(sw.0, state);
        }
        (moved, deadline)
    }

    /// Recover `replica` at `now`: it rejoins as a standby (no failback),
    /// and adopts every orphaned switch. Returns the deadline of the
    /// adoption handoffs, `None` when nothing was orphaned.
    pub fn recover(&mut self, now: SimTime, replica: u32) -> Option<SimTime> {
        if self.alive[replica as usize] {
            return None;
        }
        self.alive[replica as usize] = true;
        self.stats.recoveries += 1;
        let d = self.handoff_deadline(now);
        let mut deadline = None;
        for (_, state) in self.assignments.iter_mut() {
            if *state == Mastership::Orphaned {
                deadline = Some(d);
                *state = Mastership::Migrating {
                    from: NO_REPLICA,
                    to: replica,
                    started: now,
                    deadline: d,
                };
            }
        }
        deadline
    }

    /// Partition the coordination channel for `duration` (extends any
    /// active window). Returns the heal instant.
    pub fn partition(&mut self, now: SimTime, duration: SimDuration) -> SimTime {
        self.stats.partitions += 1;
        self.partition_until = self.partition_until.max(now + duration);
        self.partition_until
    }

    /// Settle every migration whose deadline has passed and whose target
    /// is still alive, releasing parked messages. Handoffs are returned in
    /// ascending switch-id order; each switch's messages in arrival order.
    pub fn settle(&mut self, now: SimTime) -> Vec<Handoff> {
        let mut out = Vec::new();
        let due: Vec<(u32, u32, u32, SimTime, SimTime)> = self
            .assignments
            .iter()
            .filter_map(|(&sw, state)| match *state {
                Mastership::Migrating {
                    from,
                    to,
                    started,
                    deadline,
                } if deadline <= now && self.alive[to as usize] => {
                    Some((sw, from, to, started, deadline))
                }
                _ => None,
            })
            .collect();
        for (sw, from, to, started, deadline) in due {
            self.assignments.insert(sw, Mastership::Settled(to));
            let released: Vec<(NodeId, SwitchToController)> = self
                .pending
                .remove(&sw)
                .map(|q| q.into_iter().collect())
                .unwrap_or_default();
            self.stats.pending_rel += released.len() as u64;
            self.stats.handoffs += 1;
            if now > deadline {
                self.stats.handoff_exceeded += 1;
            }
            self.handoff_ns.record_duration(now.duration_since(started));
            out.push(Handoff {
                switch: NodeId(sw),
                from,
                to,
                started,
                deadline,
                released,
            });
        }
        out
    }

    /// Fold another lane's cluster counters into this one (shard merge).
    /// Only the hub lane ever transitions state, so the fold is purely
    /// additive over counters.
    pub fn absorb_counters(&mut self, other: &ClusterState) {
        self.stats.handoffs += other.stats.handoffs;
        self.stats.handoff_exceeded += other.stats.handoff_exceeded;
        self.stats.pending_enq += other.stats.pending_enq;
        self.stats.pending_rel += other.stats.pending_rel;
        self.stats.crashes += other.stats.crashes;
        self.stats.recoveries += other.stats.recoveries;
        self.stats.partitions += other.stats.partitions;
        for (d, o) in self.decisions.iter_mut().zip(other.decisions.iter()) {
            *d += *o;
        }
        self.handoff_ns.merge(&other.handoff_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scotch_openflow::SwitchToController;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn cluster(replicas: u32) -> ClusterState {
        ClusterState::new(ClusterConfig {
            replicas,
            sync_latency: SimDuration::from_micros(500),
        })
    }

    fn switches(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn echo() -> SwitchToController {
        SwitchToController::EchoReply { nonce: 7 }
    }

    #[test]
    fn default_mastership_is_modular() {
        let c = cluster(3);
        assert_eq!(c.master_view(NodeId(0)), MasterView::Master(0));
        assert_eq!(c.master_view(NodeId(4)), MasterView::Master(1));
        assert_eq!(c.master_view(NodeId(5)), MasterView::Master(2));
    }

    #[test]
    fn crash_migrates_to_first_live_standby_after_sync_delay() {
        let mut c = cluster(3);
        let sw = switches(6);
        let (moved, deadline) = c.crash(t(0), 1, &sw);
        assert_eq!(moved, 2); // switches 1 and 4
        assert_eq!(deadline, Some(t(500)));
        assert_eq!(c.master_view(NodeId(1)), MasterView::Park);
        // Not yet due.
        assert!(c.settle(t(499)).is_empty());
        let handoffs = c.settle(t(500));
        assert_eq!(handoffs.len(), 2);
        assert_eq!(handoffs[0].switch, NodeId(1));
        assert_eq!(handoffs[0].to, 2); // standby rotation: 1 → 2
        assert_eq!(handoffs[1].switch, NodeId(4));
        assert_eq!(c.master_view(NodeId(1)), MasterView::Master(2));
        assert_eq!(c.stats().handoffs, 2);
        assert_eq!(c.stats().handoff_exceeded, 0);
    }

    #[test]
    fn parked_messages_release_in_arrival_order() {
        let mut c = cluster(2);
        let sw = switches(4);
        c.crash(t(0), 1, &sw);
        c.park(NodeId(1), NodeId(1), echo());
        c.park(NodeId(1), NodeId(9), echo());
        c.park(NodeId(3), NodeId(3), echo());
        assert_eq!(c.pending_now(), 3);
        let handoffs = c.settle(t(500));
        assert_eq!(handoffs.len(), 2);
        assert_eq!(handoffs[0].released.len(), 2);
        assert_eq!(handoffs[0].released[0].0, NodeId(1));
        assert_eq!(handoffs[0].released[1].0, NodeId(9));
        assert_eq!(c.pending_now(), 0);
        assert_eq!(c.stats().pending_enq, 3);
        assert_eq!(c.stats().pending_rel, 3);
    }

    #[test]
    fn all_dead_orphans_then_recovery_adopts() {
        let mut c = cluster(2);
        let sw = switches(2);
        c.crash(t(0), 0, &sw);
        let (_, d) = c.crash(t(100), 1, &sw);
        assert_eq!(d, None, "no live standby: switches orphan");
        assert_eq!(c.master_view(NodeId(0)), MasterView::Park);
        c.park(NodeId(0), NodeId(0), echo());
        // Nothing settles while everyone is dead.
        assert!(c.settle(t(10_000)).is_empty());
        let d = c.recover(t(20_000), 0);
        assert_eq!(d, Some(t(20_500)));
        let handoffs = c.settle(t(20_500));
        assert_eq!(handoffs.len(), 2);
        assert_eq!(handoffs[0].from, NO_REPLICA);
        assert_eq!(handoffs[0].to, 0);
        assert_eq!(handoffs[0].released.len(), 1);
        assert_eq!(c.master_view(NodeId(1)), MasterView::Master(0));
    }

    #[test]
    fn partition_delays_handoffs_initiated_inside_it() {
        let mut c = cluster(3);
        let sw = switches(3);
        let heal = c.partition(t(0), SimDuration::from_micros(2_000));
        assert_eq!(heal, t(2_000));
        let (_, d) = c.crash(t(100), 0, &sw);
        // Sync can only start once the partition heals.
        assert_eq!(d, Some(t(2_500)));
        assert!(c.settle(t(2_499)).is_empty());
        assert_eq!(c.settle(t(2_500)).len(), 1);
    }

    #[test]
    fn second_crash_retargets_in_flight_migration() {
        let mut c = cluster(3);
        let sw = switches(3);
        c.crash(t(0), 0, &sw); // switch 0: migrating 0 → 1, due t(500)
        let (moved, d) = c.crash(t(200), 1, &sw);
        // Both switch 1 (settled on 1) and switch 0 (migrating toward 1).
        assert_eq!(moved, 2);
        assert_eq!(d, Some(t(700)));
        // The original deadline passes without settling (target dead).
        assert!(c.settle(t(500)).is_empty());
        let handoffs = c.settle(t(700));
        assert_eq!(handoffs.len(), 2);
        for h in &handoffs {
            assert_eq!(h.to, 2);
        }
        // Switch 0's handoff measures from its first initiation.
        assert_eq!(handoffs[0].started, t(0));
        assert_eq!(c.stats().handoff_exceeded, 0);
    }

    #[test]
    fn resolve_target_wraps_over_live_set() {
        let mut c = cluster(3);
        assert_eq!(c.resolve_target(4), Some(1));
        c.crash(t(0), 1, &switches(3));
        assert_eq!(c.resolve_target(4), Some(0)); // live = [0, 2]
        c.crash(t(0), 0, &switches(3));
        c.crash(t(0), 2, &switches(3));
        assert_eq!(c.resolve_target(0), None);
    }

    #[test]
    fn joins_after_crash_attach_to_first_live_replica() {
        let mut c = cluster(3);
        // Switch 7 defaults to replica 1; crash it before the switch ever
        // sends a message.
        c.crash(t(0), 1, &switches(4));
        assert_eq!(c.master_view(NodeId(7)), MasterView::Master(2));
    }

    #[test]
    fn absorb_counters_is_additive() {
        let mut a = cluster(2);
        let mut b = cluster(2);
        b.crash(t(0), 1, &switches(2));
        b.settle(t(500));
        a.absorb_counters(&b);
        assert_eq!(a.stats().crashes, 1);
        assert_eq!(a.stats().handoffs, 1);
    }
}
