//! Controller-side monitoring.
//!
//! * [`PacketInMonitor`] — "The OpenFlow controller monitors the rate of
//!   Packet-In messages sent by the OFA of each physical switch to
//!   determine if the control path is congested" (§4.2). The same signal,
//!   falling below a low-water mark, drives withdrawal (§5.5).
//! * [`HeartbeatTracker`] — "vSwitch has a built-in heartbeat module that
//!   periodically sends the ECHO REQUEST message … The heartbeat message
//!   enables the OpenFlow controller to detect the failure of a vSwitch"
//!   (§5.6). We have the controller originate the probes (as Floodlight
//!   does); detection semantics are identical.

use scotch_net::NodeId;
use scotch_sim::metrics::RateMeter;
use scotch_sim::FxHashMap;
use scotch_sim::{SimDuration, SimTime};

/// Per-switch Packet-In rate monitoring.
#[derive(Debug, Clone)]
pub struct PacketInMonitor {
    window: SimDuration,
    meters: FxHashMap<NodeId, RateMeter>,
}

impl PacketInMonitor {
    /// A monitor with the given averaging window (the paper does not state
    /// one; 1 s matches its flows/sec reporting granularity).
    pub fn new(window: SimDuration) -> Self {
        PacketInMonitor {
            window,
            meters: FxHashMap::default(),
        }
    }

    /// Record one Packet-In attributed to `switch` (for overlay-borne
    /// Packet-Ins, the *originating physical switch*, not the vSwitch).
    pub fn record(&mut self, switch: NodeId, now: SimTime) {
        self.meters
            .entry(switch)
            .or_insert_with(|| RateMeter::new(self.window))
            .tick(now);
    }

    /// Current rate (events/s) for a switch; 0 if never seen.
    pub fn rate(&mut self, switch: NodeId, now: SimTime) -> f64 {
        match self.meters.get_mut(&switch) {
            Some(m) => m.rate(now),
            None => 0.0,
        }
    }

    /// Total Packet-Ins ever attributed to a switch.
    pub fn total(&self, switch: NodeId) -> u64 {
        self.meters.get(&switch).map(|m| m.total()).unwrap_or(0)
    }

    /// Lifetime Packet-In totals per switch, sorted by node id — a
    /// deterministic view over the hash map for metrics export.
    pub fn totals(&self) -> Vec<(NodeId, u64)> {
        let mut out: Vec<(NodeId, u64)> = self
            .meters
            .iter()
            .map(|(&node, m)| (node, m.total()))
            .collect();
        out.sort_by_key(|&(node, _)| node);
        out
    }
}

/// Liveness tracking for vSwitches via Echo request/reply.
#[derive(Debug, Clone)]
pub struct HeartbeatTracker {
    /// Probe period.
    pub period: SimDuration,
    /// Declared dead after this many silent periods.
    pub miss_limit: u32,
    last_reply: FxHashMap<NodeId, SimTime>,
    registered: Vec<NodeId>,
    next_nonce: u64,
}

impl HeartbeatTracker {
    /// A tracker probing every `period`, declaring failure after
    /// `miss_limit` missed replies.
    pub fn new(period: SimDuration, miss_limit: u32) -> Self {
        assert!(miss_limit >= 1);
        HeartbeatTracker {
            period,
            miss_limit,
            last_reply: FxHashMap::default(),
            registered: Vec::new(),
            next_nonce: 0,
        }
    }

    /// Start tracking a vSwitch (treated as alive as of `now`).
    pub fn register(&mut self, node: NodeId, now: SimTime) {
        if !self.registered.contains(&node) {
            self.registered.push(node);
        }
        self.last_reply.insert(node, now);
    }

    /// Stop tracking a vSwitch.
    pub fn unregister(&mut self, node: NodeId) {
        self.registered.retain(|n| *n != node);
        self.last_reply.remove(&node);
    }

    /// All tracked nodes, in registration order.
    pub fn tracked(&self) -> &[NodeId] {
        &self.registered
    }

    /// Produce the next probe nonce.
    pub fn next_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// Record an EchoReply from `node`.
    pub fn on_reply(&mut self, node: NodeId, now: SimTime) {
        if self.registered.contains(&node) {
            self.last_reply.insert(node, now);
        }
    }

    /// Is the node within its liveness deadline?
    pub fn is_alive(&self, node: NodeId, now: SimTime) -> bool {
        match self.last_reply.get(&node) {
            Some(&t) => {
                now.duration_since(t) < SimDuration(self.period.0 * self.miss_limit as u64 + 1)
            }
            None => false,
        }
    }

    /// Nodes that have newly exceeded the miss limit.
    pub fn dead_nodes(&self, now: SimTime) -> Vec<NodeId> {
        self.registered
            .iter()
            .copied()
            .filter(|n| !self.is_alive(*n, now))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_tracks_rates_per_switch() {
        let mut m = PacketInMonitor::new(SimDuration::from_secs(1));
        for i in 0..100 {
            m.record(NodeId(1), SimTime::from_millis(i * 10));
        }
        m.record(NodeId(2), SimTime::from_millis(990));
        assert_eq!(m.rate(NodeId(1), SimTime::from_millis(995)), 100.0);
        assert_eq!(m.rate(NodeId(2), SimTime::from_millis(995)), 1.0);
        assert_eq!(m.rate(NodeId(3), SimTime::from_millis(995)), 0.0);
        assert_eq!(m.total(NodeId(1)), 100);
        assert_eq!(m.total(NodeId(3)), 0);
    }

    #[test]
    fn monitor_rate_decays() {
        let mut m = PacketInMonitor::new(SimDuration::from_secs(1));
        m.record(NodeId(1), SimTime::from_millis(0));
        assert_eq!(m.rate(NodeId(1), SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn heartbeat_lifecycle() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(1), 3);
        hb.register(NodeId(1), SimTime::ZERO);
        assert!(hb.is_alive(NodeId(1), SimTime::from_secs(2)));
        // Replies keep it alive.
        hb.on_reply(NodeId(1), SimTime::from_secs(2));
        assert!(hb.is_alive(NodeId(1), SimTime::from_secs(4)));
        // Silence for > 3 periods kills it.
        assert!(!hb.is_alive(NodeId(1), SimTime::from_secs(6)));
        assert_eq!(hb.dead_nodes(SimTime::from_secs(6)), vec![NodeId(1)]);
    }

    #[test]
    fn unregistered_nodes_are_not_alive() {
        let hb = HeartbeatTracker::new(SimDuration::from_secs(1), 3);
        assert!(!hb.is_alive(NodeId(9), SimTime::ZERO));
        assert!(hb.dead_nodes(SimTime::ZERO).is_empty());
    }

    #[test]
    fn replies_from_strangers_are_ignored() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(1), 1);
        hb.on_reply(NodeId(5), SimTime::ZERO);
        assert!(!hb.is_alive(NodeId(5), SimTime::ZERO));
    }

    #[test]
    fn unregister_stops_tracking() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(1), 1);
        hb.register(NodeId(1), SimTime::ZERO);
        hb.unregister(NodeId(1));
        assert!(hb.tracked().is_empty());
        assert!(hb.dead_nodes(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn nonces_are_unique() {
        let mut hb = HeartbeatTracker::new(SimDuration::from_secs(1), 1);
        let a = hb.next_nonce();
        let b = hb.next_nonce();
        assert_ne!(a, b);
    }
}
